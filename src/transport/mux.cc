#include "src/transport/mux.h"

#include <chrono>
#include <utility>

#include "src/common/check.h"
#include "src/common/metrics.h"
#include "src/common/trace.h"
#include "src/service/plan_serde.h"

namespace dynapipe::transport {

namespace {
common::StoreMetrics& Metrics() {
  static common::StoreMetrics& m = common::StoreMetrics::For("mux");
  return m;
}
}  // namespace

MuxInstructionStore::MuxInstructionStore(std::unique_ptr<Stream> stream)
    : stream_(std::move(stream)) {
  DYNAPIPE_CHECK_MSG(stream_ != nullptr,
                     "mux instruction store: connect failed");
  demux_thread_ = std::thread([this] { DemuxLoop(); });
}

MuxInstructionStore::~MuxInstructionStore() {
  stream_->Close();  // demux loop's ReadFrame returns, loop exits
  demux_thread_.join();
}

std::shared_ptr<MuxInstructionStore> MuxInstructionStore::OverTransport(
    Transport* transport) {
  DYNAPIPE_CHECK(transport != nullptr);
  return std::make_shared<MuxInstructionStore>(transport->Connect());
}

std::shared_ptr<MuxInstructionStore> MuxInstructionStore::OverUnixSocket(
    std::string path, int connect_timeout_ms) {
  return std::make_shared<MuxInstructionStore>(
      ConnectUnixSocket(path, connect_timeout_ms));
}

void MuxInstructionStore::DemuxLoop() {
  std::string error;
  for (;;) {
    std::optional<Frame> reply = ReadFrame(*stream_, &error);
    if (!reply.has_value()) {
      break;  // closed, torn, or malformed: the connection is over
    }
    if (reply->type == FrameType::kStatsRequest) {
      // Not a reply at all: the *server* is asking for this process's
      // snapshot (the trainer's mid-epoch pull). Dispatching on type before
      // the waiter lookup keeps the two directions' id spaces independent —
      // the echoed id below is the server's, never one of ours. Answered
      // inline: the demux thread holds no lock while serving, and the
      // snapshot walk is microseconds.
      Frame stats;
      stats.type = FrameType::kStatsReply;
      stats.request_id = reply->request_id;
      AppendStatsPayload(common::Tracer::Instance().NowUs(),
                         common::MetricsRegistry::Instance().Snapshot(),
                         &stats.payload);
      std::lock_guard<std::mutex> write_lock(write_mu_);
      if (!WriteFrame(*stream_, stats)) {
        error = "mux: stats reply write failed";
        break;
      }
      continue;
    }
    std::lock_guard<std::mutex> lock(mu_);
    Waiter* waiter =
        slots_[reply->request_id % static_cast<uint64_t>(kMuxWaiterSlots)];
    if (waiter == nullptr || waiter->request_id != reply->request_id) {
      // A reply nobody asked for is a protocol violation; treat it like a
      // malformed frame and drop the connection rather than guess.
      error = "mux: reply for unknown request id";
      break;
    }
    slots_[reply->request_id % static_cast<uint64_t>(kMuxWaiterSlots)] =
        nullptr;
    waiter->reply = std::move(*reply);
    cv_.notify_all();  // wakes the waiter and anyone parked on a full slab
  }
  // Connection over (clean teardown or error): fail every outstanding waiter
  // so no caller hangs on a reply that will never come.
  stream_->Close();
  std::lock_guard<std::mutex> lock(mu_);
  connection_failed_ = true;
  connection_error_ = error.empty() ? "connection closed" : error;
  for (Waiter*& waiter : slots_) {
    if (waiter != nullptr) {
      waiter->failed = true;
      waiter = nullptr;
    }
  }
  cv_.notify_all();
}

bool MuxInstructionStore::TryCall(Frame& request, Frame* reply,
                                  int timeout_ms) const {
  Waiter waiter;
  int slot = -1;
  {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      if (connection_failed_) {
        return false;
      }
      // Claim a free slot, scanning from where the last claim left off. A
      // full slab means kMuxWaiterSlots requests are genuinely in flight;
      // wait for one to complete (pushes can hold at most kMuxPushCredits
      // slots, everything else is answered inline, so slots churn).
      for (int probe = 0; probe < kMuxWaiterSlots; ++probe) {
        const int candidate = (slot_scan_hint_ + probe) % kMuxWaiterSlots;
        if (slots_[candidate] == nullptr) {
          slot = candidate;
          break;
        }
      }
      if (slot >= 0) {
        break;
      }
      cv_.wait(lock);
    }
    slot_scan_hint_ = (slot + 1) % kMuxWaiterSlots;
    // Mint the slot's next id: congruent to the slot index mod the slab size,
    // strictly increasing per slot, and never 0 (the one-shot path's id), so
    // no two in-flight requests ever share a slot.
    request.request_id =
        static_cast<uint64_t>(slot) +
        static_cast<uint64_t>(kMuxWaiterSlots) * (++slot_generation_[slot]);
    waiter.request_id = request.request_id;
    slots_[slot] = &waiter;
  }
  bool write_ok;
  {
    // Per-thread scratch: steady-state requests assemble their wire bytes
    // with no per-call allocation.
    thread_local std::string wire;
    std::lock_guard<std::mutex> lock(write_mu_);
    write_ok = WriteFrame(*stream_, request, &wire);
  }
  std::unique_lock<std::mutex> lock(mu_);
  if (!write_ok) {
    // The demux loop will notice the dead stream and fail the waiter; don't
    // wait for it — deregister ourselves if it has not already.
    if (slots_[slot] == &waiter) {
      slots_[slot] = nullptr;
      cv_.notify_all();
    }
    return false;
  }
  const auto served = [&] { return waiter.reply.has_value() || waiter.failed; };
  if (timeout_ms > 0) {
    if (!cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms), served)) {
      // No reply in time: the server is wedged or gone. The waiter is on
      // this stack frame, so it MUST leave the slab before we return; and
      // the connection must die with it — a reply landing later for a
      // deregistered id would (rightly) read as a protocol violation.
      if (slots_[slot] == &waiter) {
        slots_[slot] = nullptr;
        cv_.notify_all();
      }
      lock.unlock();
      stream_->Close();  // demux loop exits and marks the connection failed
      return false;
    }
  } else {
    cv_.wait(lock, served);
  }
  if (!waiter.reply.has_value()) {
    return false;  // demux loop failed us: connection over
  }
  *reply = std::move(*waiter.reply);
  return true;
}

Frame MuxInstructionStore::Call(Frame& request,
                                FrameType expected_reply) const {
  Frame reply;
  if (!TryCall(request, &reply)) {
    std::lock_guard<std::mutex> lock(mu_);
    DYNAPIPE_CHECK_MSG(false, "mux instruction store: connection lost (" +
                                  connection_error_ + ")");
  }
  if (reply.type == FrameType::kMissing) {
    // The server-side store did not hold the key. Same intentional contract
    // as the in-process store's fatal fetch-before-publish.
    DYNAPIPE_CHECK_MSG(false,
                       "mux instruction store: fetching unpublished plan");
  }
  DYNAPIPE_CHECK_MSG(reply.type == expected_reply,
                     "mux instruction store: unexpected reply type");
  return reply;
}

void MuxInstructionStore::Push(int64_t iteration, int32_t replica,
                               sim::ExecutionPlan plan) {
  // The frame persists per thread so its payload buffer (the encode scratch)
  // keeps its capacity across pushes: steady-state publishing allocates
  // nothing once the buffer has grown to plan size.
  thread_local Frame request;
  request.type = FrameType::kPush;
  request.iteration = iteration;
  request.replica = replica;
  service::EncodeExecutionPlanInto(plan, &request.payload);
  serialized_bytes_total_.fetch_add(
      static_cast<int64_t>(request.payload.size()), std::memory_order_relaxed);
  common::StoreMetrics& metrics = Metrics();
  metrics.push_total.Add();
  metrics.bytes_pushed.Add(static_cast<int64_t>(request.payload.size()));
  common::LatencyTimer push_timer;
  common::TraceSpan span("published", "plan", iteration, replica);
  // Take a push credit: bounds the kPush replies the server may be holding
  // back for us. Returned when our kOk lands (or the connection dies — the
  // credits die with it).
  {
    const common::LatencyTimer park_timer;
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock,
             [&] { return push_credits_ > 0 || connection_failed_; });
    DYNAPIPE_CHECK_MSG(!connection_failed_,
                       "mux instruction store: connection lost (" +
                           connection_error_ + ")");
    --push_credits_;
    park_timer.ObserveInto(metrics.park_us);
  }
  // Blocks until the server's deferred kOk — the capacity backpressure.
  Call(request, FrameType::kOk);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++push_credits_;
    cv_.notify_all();
  }
  push_timer.ObserveInto(metrics.push_us);
}

sim::ExecutionPlan MuxInstructionStore::Fetch(int64_t iteration,
                                              int32_t replica) {
  Frame request;
  request.type = FrameType::kFetch;
  request.iteration = iteration;
  request.replica = replica;
  common::StoreMetrics& metrics = Metrics();
  metrics.fetch_total.Add();
  const common::LatencyTimer fetch_timer;
  Frame reply;
  {
    common::TraceSpan span("fetched", "plan", iteration, replica);
    reply = Call(request, FrameType::kPlanBytes);
  }
  std::string error;
  std::optional<sim::ExecutionPlan> plan;
  {
    common::TraceSpan span("decoded", "plan", iteration, replica);
    plan = service::TryDecodeExecutionPlan(reply.payload, &error);
  }
  fetch_timer.ObserveInto(metrics.fetch_us);
  DYNAPIPE_CHECK_MSG(plan.has_value(),
                     "mux instruction store: fetched plan is corrupt (" +
                         error + ")");
  return std::move(*plan);
}

bool MuxInstructionStore::Contains(int64_t iteration, int32_t replica) const {
  Frame request;
  request.type = FrameType::kContains;
  request.iteration = iteration;
  request.replica = replica;
  const Frame reply = Call(request, FrameType::kBool);
  DYNAPIPE_CHECK_MSG(reply.payload.size() == 1,
                     "mux instruction store: malformed kBool reply");
  return reply.payload[0] != '\0';
}

size_t MuxInstructionStore::size() const {
  Frame request;
  request.type = FrameType::kSize;
  const Frame reply = Call(request, FrameType::kCount);
  uint64_t count = 0;
  size_t pos = 0;
  DYNAPIPE_CHECK_MSG(
      service::TryParseVarint(reply.payload, &pos, &count) &&
          pos == reply.payload.size(),
      "mux instruction store: malformed kCount reply");
  return static_cast<size_t>(count);
}

void MuxInstructionStore::Shutdown() {
  Frame request;
  request.type = FrameType::kShutdown;
  Call(request, FrameType::kOk);
}

bool MuxInstructionStore::Heartbeat(int32_t replica, int64_t iteration,
                                    double wall_ms) {
  thread_local Frame request;
  request.type = FrameType::kHeartbeat;
  request.iteration = iteration;
  request.replica = replica;
  request.payload.clear();
  AppendHeartbeatPayload(wall_ms, &request.payload);
  Call(request, FrameType::kOk);
  return true;
}

int64_t MuxInstructionStore::serialized_bytes_total() const {
  return serialized_bytes_total_.load(std::memory_order_relaxed);
}

bool MuxInstructionStore::connection_ok() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !connection_failed_;
}

bool MuxInstructionStore::TryContains(int64_t iteration, int32_t replica,
                                      bool* present, int timeout_ms) {
  Frame request;
  request.type = FrameType::kContains;
  request.iteration = iteration;
  request.replica = replica;
  Frame reply;
  if (!TryCall(request, &reply, timeout_ms) ||
      reply.type != FrameType::kBool || reply.payload.size() != 1) {
    return false;  // connection-grade failure either way: drop and reconnect
  }
  *present = reply.payload[0] != '\0';
  return true;
}

std::optional<sim::ExecutionPlan> MuxInstructionStore::TryFetch(
    int64_t iteration, int32_t replica, bool* connection_lost) {
  *connection_lost = false;
  Frame request;
  request.type = FrameType::kFetch;
  request.iteration = iteration;
  request.replica = replica;
  common::StoreMetrics& metrics = Metrics();
  metrics.fetch_total.Add();
  const common::LatencyTimer fetch_timer;
  Frame reply;
  {
    common::TraceSpan span("fetched", "plan", iteration, replica);
    if (!TryCall(request, &reply)) {
      *connection_lost = true;
      return std::nullopt;
    }
  }
  if (reply.type == FrameType::kMissing) {
    return std::nullopt;  // key reclaimed (recovery reposted it) — not fatal
  }
  if (reply.type != FrameType::kPlanBytes) {
    *connection_lost = true;  // protocol confusion: treat as connection loss
    stream_->Close();
    return std::nullopt;
  }
  std::string error;
  std::optional<sim::ExecutionPlan> plan;
  {
    common::TraceSpan span("decoded", "plan", iteration, replica);
    plan = service::TryDecodeExecutionPlan(reply.payload, &error);
  }
  fetch_timer.ObserveInto(metrics.fetch_us);
  // Corrupt plan bytes stay fatal even on the resilient path: executing a
  // damaged plan is the one thing recovery must never do.
  DYNAPIPE_CHECK_MSG(plan.has_value(),
                     "mux instruction store: fetched plan is corrupt (" +
                         error + ")");
  return plan;
}

bool MuxInstructionStore::TryHeartbeat(int32_t replica, int64_t iteration,
                                       double wall_ms, bool* evicted) {
  *evicted = false;
  Frame request;
  request.type = FrameType::kHeartbeat;
  request.iteration = iteration;
  request.replica = replica;
  AppendHeartbeatPayload(wall_ms, &request.payload);
  Frame reply;
  if (!TryCall(request, &reply)) {
    return false;
  }
  if (reply.type == FrameType::kEvicted) {
    *evicted = true;
    return true;  // delivered — and the server told us to stop
  }
  return reply.type == FrameType::kOk;
}

bool MuxInstructionStore::Attach(int32_t replica, bool* evicted,
                                 int timeout_ms, bool join) {
  *evicted = false;
  Frame request;
  request.type = FrameType::kAttach;
  request.replica = replica;
  // Declare the stats capability: this client's demux loop answers
  // server-initiated kStatsRequest frames, so the server may pull snapshots
  // over this connection mid-epoch. One-shot liveness attaches (remote_store)
  // keep the empty v2 payload — nothing reads their stream between requests.
  // A joiner additionally declares kAttachCapJoin (frame v4).
  uint8_t caps = kAttachCapStats;
  if (join) {
    caps |= kAttachCapJoin;
  }
  request.payload.push_back(static_cast<char>(caps));
  Frame reply;
  if (!TryCall(request, &reply, timeout_ms)) {
    return false;
  }
  if (reply.type == FrameType::kEvicted) {
    *evicted = true;
    return true;
  }
  return reply.type == FrameType::kOk;
}

bool MuxInstructionStore::TryDrain(int32_t replica, bool* evicted,
                                   int timeout_ms) {
  *evicted = false;
  Frame request;
  request.type = FrameType::kDrainRequest;
  request.replica = replica;
  Frame reply;
  if (!TryCall(request, &reply, timeout_ms)) {
    return false;
  }
  if (reply.type == FrameType::kEvicted) {
    *evicted = true;
    return true;  // delivered — and the server told us to stop instead
  }
  return reply.type == FrameType::kDrainAck;
}

bool MuxInstructionStore::Detach(int32_t replica) {
  Frame request;
  request.type = FrameType::kDetach;
  request.replica = replica;
  Frame reply;
  return TryCall(request, &reply) && reply.type == FrameType::kOk;
}

bool MuxInstructionStore::TryStats(int64_t* server_trace_now_us,
                                   common::MetricsSnapshot* snapshot,
                                   int timeout_ms) {
  Frame request;
  request.type = FrameType::kStatsRequest;
  Frame reply;
  if (!TryCall(request, &reply, timeout_ms)) {
    return false;
  }
  if (reply.type != FrameType::kStatsReply ||
      !TryParseStatsPayload(reply.payload, server_trace_now_us, snapshot)) {
    stream_->Close();  // protocol confusion: connection-grade failure
    return false;
  }
  return true;
}

bool MuxInstructionStore::TrySyncClock(int timeout_ms) {
  common::Tracer& tracer = common::Tracer::Instance();
  const int64_t send_us = tracer.NowUs();
  int64_t server_now_us = 0;
  common::MetricsSnapshot ignored;
  if (!TryStats(&server_now_us, &ignored, timeout_ms)) {
    return false;
  }
  tracer.AlignToPeer(server_now_us, send_us, tracer.NowUs());
  return true;
}

}  // namespace dynapipe::transport
