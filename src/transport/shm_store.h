// Shared-memory instruction store: zero-copy same-host plan distribution.
//
// The socket path (remote_store.h) pays an encode, two copies, and a wire
// round trip per hop. Plans are immutable once published, so same-host
// executors can instead map the store's memory directly: a POSIX shared
// memory segment (shm_open + mmap) holding an append-only arena of serialized
// plans plus a fixed-slot index keyed by (iteration, replica). The publisher
// encodes each plan straight into the arena (one write, no intermediate
// copy beyond its reusable scratch buffer) and flips the slot's seqlock to
// publish; executors in any process attach by name and fetch a zero-copy view
// of the bytes — a std::string_view into the mapping — which Fetch decodes in
// place with TryDecodeExecutionPlan. Nothing crosses a wire and nothing is
// copied on the fetch side.
//
// Layout (one segment, version 2):
//
//   ShmHeader | ShmHeartbeatSlot[kShmHeartbeatSlots] | ShmSlot[num_slots]
//             | arena bytes...
//
// The heartbeat slot array is the segment's liveness channel: each attached
// executor claims one slot (under the header mutex, once) and thereafter
// writes its completions and a last-alive timestamp into it with the same
// single-writer seqlock discipline as the index — so same-host deployments
// get straggler and failure detection with no socket side-channel. The
// trainer runs a ShmHeartbeatPoller (below) that drains the slots into a
// runtime::HeartbeatSink.
//
// Concurrency model, chosen to be TSan-clean and cross-process correct:
//   - A PTHREAD_PROCESS_SHARED mutex + condvar in the header guard all index
//     mutation and carry the blocking-Push backpressure (the in-segment
//     equivalent of the in-process store's cv_ wait) and Shutdown broadcast.
//   - Each slot carries a seqlock (atomic sequence counter: odd = mutating,
//     even = stable) over relaxed-atomic key fields, so read-only lookups
//     (Contains) never take the cross-process lock: readers snapshot the slot
//     between two equal even sequence reads and retry otherwise.
//   - Plan bytes are written to the arena before the slot is published under
//     the mutex and are immutable until the arena rewinds, so fetchers that
//     found the slot under the mutex read the payload with no further
//     synchronization. Rewinds (below) wait for active readers to drain.
//
// Capacity and the arena high-water mark: Push blocks while `capacity` plans
// are resident (the InstructionStoreInterface contract) and also while the
// arena or slot table is exhausted. Because the arena is append-only, space
// is reclaimed wholesale: when every published plan has been fetched and no
// fetcher still holds a view, the write offset rewinds to zero and all slots
// recycle. A capacity-bounded store therefore needs only
// O(capacity * max_plan_bytes) of arena for an arbitrarily long epoch: the
// blocked publisher wakes as soon as the executors drain the store.
//
// Reader pins are tagged per process: AcquireView records the caller's pid in
// a pin table in the header, and the rewind check probes pinner liveness
// (kill(pid, 0)) before giving up — a reader SIGKILLed between fetch and
// release must not pin the arena forever and park every publisher. The park
// itself is a timed wait, so a blocked publisher re-evaluates (and reclaims
// dead pins) without needing anyone to broadcast.
#ifndef DYNAPIPE_SRC_TRANSPORT_SHM_STORE_H_
#define DYNAPIPE_SRC_TRANSPORT_SHM_STORE_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "src/runtime/instruction_store.h"

namespace dynapipe::transport {

namespace internal {
struct ShmHeader;
struct ShmSlot;
struct ShmHeartbeatSlot;
}  // namespace internal

// Heartbeat slot table size — the maximum number of replicas that can report
// liveness through one segment. Independent of num_slots (index entries).
inline constexpr uint32_t kShmHeartbeatSlots = 32;
// Completions retained per heartbeat slot between poller visits. A poller
// lagging more than this many completions behind loses the oldest (liveness
// is unaffected; only per-iteration wall samples drop).
inline constexpr uint32_t kShmHeartbeatRing = 8;

struct ShmStoreOptions {
  // Maximum resident (published, unfetched) plans; Push blocks until a Fetch
  // frees a slot. 0 means bounded only by the segment itself.
  size_t capacity = 0;
  // Index slots. Bounds the plans resident at once plus the consumed entries
  // awaiting the next arena rewind.
  size_t num_slots = 512;
  // Arena bytes for serialized plans. Plans are ~10 KB, so the default holds
  // thousands between rewinds.
  size_t arena_bytes = size_t{32} << 20;
};

class ShmInstructionStore final : public runtime::InstructionStoreInterface {
 public:
  // Creates (shm_open O_CREAT|O_EXCL) and initializes a fresh segment. The
  // creating process owns the name: the destructor shm_unlinks it. `name`
  // must be a valid shm name ("/dynapipe-...").
  static std::shared_ptr<ShmInstructionStore> Create(std::string name,
                                                     ShmStoreOptions options);
  // Attaches to a segment another process created, retrying while the
  // creator is still setting it up (the executor usually races the planner's
  // startup). Aborts on timeout or an incompatible segment.
  static std::shared_ptr<ShmInstructionStore> Attach(std::string name,
                                                     int timeout_ms = 5000);
  ~ShmInstructionStore() override;

  ShmInstructionStore(const ShmInstructionStore&) = delete;
  ShmInstructionStore& operator=(const ShmInstructionStore&) = delete;

  // InstructionStoreInterface. Push encodes into a per-thread scratch buffer
  // and appends to the arena; Fetch decodes in place from the mapping.
  void Push(int64_t iteration, int32_t replica,
            sim::ExecutionPlan plan) override;
  sim::ExecutionPlan Fetch(int64_t iteration, int32_t replica) override;
  bool Contains(int64_t iteration, int32_t replica) const override;
  size_t size() const override;
  void Shutdown() override;
  int64_t serialized_bytes_total() const override;

  // Zero-copy fetch: consumes the plan and returns a view of its serialized
  // bytes inside the mapping — no copy, no decode. The view pins the arena
  // (rewinds wait for it), so it stays valid until released; Release promptly
  // after decoding. Fetch() is AcquireView + decode-in-place + ReleaseView.
  // Fetching an unpublished key aborts, like every backend.
  class PlanView {
   public:
    PlanView(PlanView&& other) noexcept;
    PlanView& operator=(PlanView&&) = delete;
    ~PlanView();  // releases

    std::string_view bytes() const { return bytes_; }

   private:
    friend class ShmInstructionStore;
    PlanView(ShmInstructionStore* store, std::string_view bytes)
        : store_(store), bytes_(bytes) {}
    ShmInstructionStore* store_;
    std::string_view bytes_;
  };
  PlanView AcquireView(int64_t iteration, int32_t replica);

  // Raw-bytes publish, mirroring InstructionStore::PushBytes: appends the
  // already-encoded plan verbatim (false when Shutdown dropped it).
  bool PushBytes(int64_t iteration, int32_t replica, std::string_view bytes);

  // --- Liveness channel (executor side) ---
  // The segment carries per-replica heartbeat slots, so the capability is
  // intrinsic — no server, no sink attachment needed on this side.
  bool supports_heartbeat() const override { return true; }
  // Records an iteration completion in the replica's heartbeat slot (claimed
  // on first use). The trainer-side ShmHeartbeatPoller forwards it to the
  // HeartbeatMonitor. Always returns true.
  bool Heartbeat(int32_t replica, int64_t iteration, double wall_ms) override;
  // Claims the replica's heartbeat slot and stamps it alive — executors call
  // this right after Attach so the trainer's fleet barrier sees them before
  // their first completion.
  void AnnounceReplica(int32_t replica);
  // Refreshes the replica's last-alive stamp without recording a completion;
  // the executor's poll loop calls this so a replica parked on an unpublished
  // key still proves liveness (the wire backends' kContains does the same).
  void TouchReplica(int32_t replica);
  // Marks the replica's slot cleanly detached — the shm equivalent of the
  // wire kDetach goodbye; the poller reports it as a clean disconnect so
  // deadline tracking stops.
  void DetachReplica(int32_t replica);
  // --- Elastic membership (drain handshake) ---
  // The slot's `detached` word doubles as a drain state machine:
  //   0 = attached, 1 = clean goodbye, 2 = drain requested (executor wrote),
  //   3 = drain acknowledged (publisher wrote). Same layout, same version.
  // Executor side: asks to leave — the shm equivalent of the wire
  // kDrainRequest. The poller forwards it to the HeartbeatSink and the
  // MembershipCoordinator fences + reposts before acknowledging.
  void RequestDrain(int32_t replica);
  // Executor side: true once the publisher acknowledged the drain — the
  // green light to finish in-flight work and DetachReplica.
  bool DrainAcknowledged(int32_t replica);
  // Publisher side: acknowledges a requested drain (CAS 2 -> 3 on the slot
  // owned by `replica`; a racing final goodbye wins). The shm equivalent of
  // the wire kDrainAck reply.
  void AcknowledgeDrain(int32_t replica);

  // Membership fence — process-local, like the in-process store's: the
  // coordinators live in the publisher process, so the fence does not need
  // to cross the segment.
  void FenceReplica(int32_t replica) override;
  void UnfenceReplica(int32_t replica) override;
  bool IsReplicaFenced(int32_t replica) const override;

  // --- Recovery surface (planner side) ---
  bool supports_recovery() const override { return true; }
  std::vector<int64_t> PendingIterations(int32_t replica) const override;
  runtime::RepostOutcome Repost(int64_t src_iteration, int32_t src_replica,
                                int64_t dst_iteration,
                                int32_t dst_replica) override;
  size_t DropReplica(int32_t replica) override;

  const std::string& name() const { return name_; }
  // Arena rewinds so far — how often the store drained and reclaimed the
  // whole arena (bench/diagnostic).
  int64_t arena_rewinds() const;
  // Reader pins reclaimed from dead processes so far (the crash-pinned-arena
  // counter; also exported as store_shm_pin_reclaims_total).
  int64_t pin_reclaims() const;

 private:
  friend class ShmHeartbeatPoller;

  ShmInstructionStore(std::string name, void* base, size_t total_bytes,
                      bool owner);

  internal::ShmHeader& header() const;
  internal::ShmSlot* slots() const;
  internal::ShmHeartbeatSlot* heartbeat_slots() const;
  char* arena() const;
  // Blocks until the plan fits (capacity, slots, arena — rewinding when
  // drained) or shutdown; returns the reserved slot index or -1 if shutdown
  // dropped the plan. Aborts on double publish.
  ptrdiff_t ReserveLocked(int64_t iteration, int32_t replica, size_t bytes,
                          uint64_t* offset_out);
  void ReleaseView();
  // Finds (claiming on first use, under the header mutex) the heartbeat slot
  // for `replica`. Caller must hold hb_mu_.
  internal::ShmHeartbeatSlot& HeartbeatSlotLocked(int32_t replica);

  std::string name_;
  void* base_ = nullptr;
  size_t total_bytes_ = 0;
  bool owner_ = false;
  // Process-local heartbeat state: which segment slot each replica this
  // process reports for has claimed, and a lock serializing same-process
  // writers so each slot keeps a single seqlock writer.
  mutable std::mutex hb_mu_;
  std::map<int32_t, uint32_t> hb_claimed_;  // replica -> slot index
  // Process-local membership fence (publisher side); guarded by fence_mu_.
  mutable std::mutex fence_mu_;
  std::vector<int32_t> fenced_;
};

// Trainer-side pump for the segment's heartbeat slots: a thread that polls
// every claimed slot and forwards attaches, completions, clean detaches, and
// last-alive refreshes into a runtime::HeartbeatSink (concretely the
// service::HeartbeatMonitor, whose deadline machinery then provides
// suspect/dead transitions — the shm-native stall detector). Keeps the store
// alive via shared_ptr; destroy the poller before the sink.
class ShmHeartbeatPoller {
 public:
  ShmHeartbeatPoller(std::shared_ptr<ShmInstructionStore> store,
                     runtime::HeartbeatSink* sink, int poll_interval_ms = 5);
  ~ShmHeartbeatPoller();

  ShmHeartbeatPoller(const ShmHeartbeatPoller&) = delete;
  ShmHeartbeatPoller& operator=(const ShmHeartbeatPoller&) = delete;

  // One polling pass over all slots (the loop body); returns how many sink
  // calls it made. Tests call this directly for deterministic ticks.
  int PollOnce();

 private:
  struct SlotObservation {
    int32_t replica = -1;
    uint64_t beats = 0;
    int64_t last_alive_us = 0;
    bool attached_delivered = false;
    bool detach_delivered = false;
    bool drain_delivered = false;
  };

  void Loop();

  std::shared_ptr<ShmInstructionStore> store_;
  runtime::HeartbeatSink* sink_;
  int poll_interval_ms_;
  std::vector<SlotObservation> observed_;
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace dynapipe::transport

#endif  // DYNAPIPE_SRC_TRANSPORT_SHM_STORE_H_
