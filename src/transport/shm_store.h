// Shared-memory instruction store: zero-copy same-host plan distribution.
//
// The socket path (remote_store.h) pays an encode, two copies, and a wire
// round trip per hop. Plans are immutable once published, so same-host
// executors can instead map the store's memory directly: a POSIX shared
// memory segment (shm_open + mmap) holding an append-only arena of serialized
// plans plus a fixed-slot index keyed by (iteration, replica). The publisher
// encodes each plan straight into the arena (one write, no intermediate
// copy beyond its reusable scratch buffer) and flips the slot's seqlock to
// publish; executors in any process attach by name and fetch a zero-copy view
// of the bytes — a std::string_view into the mapping — which Fetch decodes in
// place with TryDecodeExecutionPlan. Nothing crosses a wire and nothing is
// copied on the fetch side.
//
// Layout (one segment):
//
//   ShmHeader | ShmSlot[num_slots] | arena bytes...
//
// Concurrency model, chosen to be TSan-clean and cross-process correct:
//   - A PTHREAD_PROCESS_SHARED mutex + condvar in the header guard all index
//     mutation and carry the blocking-Push backpressure (the in-segment
//     equivalent of the in-process store's cv_ wait) and Shutdown broadcast.
//   - Each slot carries a seqlock (atomic sequence counter: odd = mutating,
//     even = stable) over relaxed-atomic key fields, so read-only lookups
//     (Contains) never take the cross-process lock: readers snapshot the slot
//     between two equal even sequence reads and retry otherwise.
//   - Plan bytes are written to the arena before the slot is published under
//     the mutex and are immutable until the arena rewinds, so fetchers that
//     found the slot under the mutex read the payload with no further
//     synchronization. Rewinds (below) wait for active readers to drain.
//
// Capacity and the arena high-water mark: Push blocks while `capacity` plans
// are resident (the InstructionStoreInterface contract) and also while the
// arena or slot table is exhausted. Because the arena is append-only, space
// is reclaimed wholesale: when every published plan has been fetched and no
// fetcher still holds a view, the write offset rewinds to zero and all slots
// recycle. A capacity-bounded store therefore needs only
// O(capacity * max_plan_bytes) of arena for an arbitrarily long epoch: the
// blocked publisher wakes as soon as the executors drain the store.
#ifndef DYNAPIPE_SRC_TRANSPORT_SHM_STORE_H_
#define DYNAPIPE_SRC_TRANSPORT_SHM_STORE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "src/runtime/instruction_store.h"

namespace dynapipe::transport {

namespace internal {
struct ShmHeader;
struct ShmSlot;
}  // namespace internal

struct ShmStoreOptions {
  // Maximum resident (published, unfetched) plans; Push blocks until a Fetch
  // frees a slot. 0 means bounded only by the segment itself.
  size_t capacity = 0;
  // Index slots. Bounds the plans resident at once plus the consumed entries
  // awaiting the next arena rewind.
  size_t num_slots = 512;
  // Arena bytes for serialized plans. Plans are ~10 KB, so the default holds
  // thousands between rewinds.
  size_t arena_bytes = size_t{32} << 20;
};

class ShmInstructionStore final : public runtime::InstructionStoreInterface {
 public:
  // Creates (shm_open O_CREAT|O_EXCL) and initializes a fresh segment. The
  // creating process owns the name: the destructor shm_unlinks it. `name`
  // must be a valid shm name ("/dynapipe-...").
  static std::shared_ptr<ShmInstructionStore> Create(std::string name,
                                                     ShmStoreOptions options);
  // Attaches to a segment another process created, retrying while the
  // creator is still setting it up (the executor usually races the planner's
  // startup). Aborts on timeout or an incompatible segment.
  static std::shared_ptr<ShmInstructionStore> Attach(std::string name,
                                                     int timeout_ms = 5000);
  ~ShmInstructionStore() override;

  ShmInstructionStore(const ShmInstructionStore&) = delete;
  ShmInstructionStore& operator=(const ShmInstructionStore&) = delete;

  // InstructionStoreInterface. Push encodes into a per-thread scratch buffer
  // and appends to the arena; Fetch decodes in place from the mapping.
  void Push(int64_t iteration, int32_t replica,
            sim::ExecutionPlan plan) override;
  sim::ExecutionPlan Fetch(int64_t iteration, int32_t replica) override;
  bool Contains(int64_t iteration, int32_t replica) const override;
  size_t size() const override;
  void Shutdown() override;
  int64_t serialized_bytes_total() const override;

  // Zero-copy fetch: consumes the plan and returns a view of its serialized
  // bytes inside the mapping — no copy, no decode. The view pins the arena
  // (rewinds wait for it), so it stays valid until released; Release promptly
  // after decoding. Fetch() is AcquireView + decode-in-place + ReleaseView.
  // Fetching an unpublished key aborts, like every backend.
  class PlanView {
   public:
    PlanView(PlanView&& other) noexcept;
    PlanView& operator=(PlanView&&) = delete;
    ~PlanView();  // releases

    std::string_view bytes() const { return bytes_; }

   private:
    friend class ShmInstructionStore;
    PlanView(ShmInstructionStore* store, std::string_view bytes)
        : store_(store), bytes_(bytes) {}
    ShmInstructionStore* store_;
    std::string_view bytes_;
  };
  PlanView AcquireView(int64_t iteration, int32_t replica);

  // Raw-bytes publish, mirroring InstructionStore::PushBytes: appends the
  // already-encoded plan verbatim (false when Shutdown dropped it).
  bool PushBytes(int64_t iteration, int32_t replica, std::string_view bytes);

  const std::string& name() const { return name_; }
  // Arena rewinds so far — how often the store drained and reclaimed the
  // whole arena (bench/diagnostic).
  int64_t arena_rewinds() const;

 private:
  ShmInstructionStore(std::string name, void* base, size_t total_bytes,
                      bool owner);

  internal::ShmHeader& header() const;
  internal::ShmSlot* slots() const;
  char* arena() const;
  // Blocks until the plan fits (capacity, slots, arena — rewinding when
  // drained) or shutdown; returns the reserved slot index or -1 if shutdown
  // dropped the plan. Aborts on double publish.
  ptrdiff_t ReserveLocked(int64_t iteration, int32_t replica, size_t bytes,
                          uint64_t* offset_out);
  void ReleaseView();

  std::string name_;
  void* base_ = nullptr;
  size_t total_bytes_ = 0;
  bool owner_ = false;
};

}  // namespace dynapipe::transport

#endif  // DYNAPIPE_SRC_TRANSPORT_SHM_STORE_H_
