#include "src/transport/shm_store.h"

#include <fcntl.h>
#include <pthread.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cerrno>
#include <cstring>
#include <optional>
#include <thread>
#include <utility>

#include "src/common/check.h"
#include "src/common/metrics.h"
#include "src/common/trace.h"
#include "src/service/plan_serde.h"

namespace dynapipe::transport {
namespace internal {

inline constexpr char kShmMagic[8] = {'D', 'P', 'S', 'H', 'M', 'S', 'T', '1'};
// Version 2: heartbeat slot array between the header and the index, and
// per-process reader pins (replacing the lone active_readers count) in the
// header. Attach rejects other versions.
inline constexpr uint32_t kShmVersion = 2;

// Reader pin table size — the maximum number of *processes* concurrently
// holding unreleased views. Far above any real fleet (one executor process
// per replica).
inline constexpr uint32_t kShmReaderPins = 64;

// Slot lifecycle, stored in ShmSlot::state.
enum SlotState : uint32_t {
  kEmpty = 0,
  kReserved = 1,   // a publisher owns the arena range; key is claimed
  kPublished = 2,  // bytes immutable and fetchable
  kConsumed = 3,   // fetched; recycled at the next arena rewind
};

// One index entry. The seqlock (odd = mutating) lets lock-free readers
// (Contains) snapshot the key fields without the cross-process mutex; all
// mutation happens under the header mutex, so writers never contend on seq.
struct ShmSlot {
  std::atomic<uint64_t> seq{0};
  std::atomic<uint32_t> state{kEmpty};
  std::atomic<int32_t> replica{0};
  std::atomic<int64_t> iteration{0};
  std::atomic<uint64_t> offset{0};  // payload offset from segment base
  std::atomic<uint64_t> length{0};
};
static_assert(std::atomic<uint64_t>::is_always_lock_free &&
                  std::atomic<int64_t>::is_always_lock_free,
              "shm slots need address-free lock-free atomics");

// One retained completion in a heartbeat slot's ring.
struct ShmHeartbeatEntry {
  std::atomic<int64_t> iteration{0};
  std::atomic<uint64_t> wall_us{0};
};

// One replica's liveness mailbox. Claimed once under the header mutex
// (replica flips from -1); thereafter a single process writes it under the
// slot seqlock — same discipline as the index, so the trainer-side poller
// reads without the cross-process lock. last_alive_us is a lone CLOCK_
// MONOTONIC stamp read/written as a standalone atomic: pure liveness touches
// (TouchReplica, every executor poll) skip the seqlock entirely.
struct ShmHeartbeatSlot {
  std::atomic<uint64_t> seq{0};
  std::atomic<int32_t> replica{-1};  // -1 = unclaimed
  std::atomic<int32_t> pid{0};       // claiming process (diagnostic)
  // Goodbye + drain state machine: 0 = attached, 1 = clean goodbye (poller
  // stops deadlines), 2 = drain requested (executor wrote; poller forwards
  // OnReplicaDrainRequested), 3 = drain acknowledged (publisher CASed 2 -> 3;
  // the executor's green light to finish in-flight work and detach). Only the
  // executor writes under the seqlock; the publisher's ack is a lone CAS that
  // a racing final goodbye (2 -> 1) beats cleanly.
  std::atomic<uint32_t> detached{0};
  std::atomic<uint64_t> beats{0};     // completions written, ever
  std::atomic<int64_t> last_alive_us{0};
  ShmHeartbeatEntry ring[kShmHeartbeatRing];
};

// One process's unreleased-view count, guarded by the header mutex. Tagging
// pins per pid is what makes a crashed reader recoverable: the rewind check
// probes kill(pid, 0) and reclaims pins whose owner is gone.
struct ShmReaderPin {
  int32_t pid = 0;     // 0 = free
  uint32_t views = 0;  // unreleased views held by that process
};

struct alignas(64) ShmHeader {
  char magic[8];
  uint32_t version = 0;
  // Creator flips this last (release): attachers spin on it (acquire) so they
  // never touch a half-initialized mutex.
  std::atomic<uint32_t> ready{0};
  uint64_t total_bytes = 0;
  uint32_t num_slots = 0;
  uint64_t arena_offset = 0;  // from segment base
  uint64_t arena_bytes = 0;
  uint64_t capacity = 0;

  // Cross-process lock: guards every field below and carries Push
  // backpressure + Shutdown broadcast (the paper-side equivalent of the
  // in-process store's condvar, living inside the segment).
  pthread_mutex_t mu;
  pthread_cond_t cv;

  // All guarded by mu.
  uint64_t slots_used = 0;   // slots allocated since the last rewind
  uint64_t arena_used = 0;   // arena bytes appended since the last rewind
  uint64_t resident = 0;     // published, unfetched (== size())
  uint64_t occupied = 0;     // reserved + resident (capacity gating)
  // Fetched views not yet released, == sum of reader_pins[].views. The pins
  // carry the per-process attribution; this aggregate keeps the rewind check
  // O(1) on the fast path.
  uint64_t active_readers = 0;
  uint32_t shutdown = 0;
  int64_t serialized_bytes_total = 0;
  int64_t rewinds = 0;
  int64_t pin_reclaims = 0;  // dead-process pins reclaimed
  ShmReaderPin reader_pins[kShmReaderPins];
};

}  // namespace internal

namespace {

using internal::ShmHeader;
using internal::ShmHeartbeatSlot;
using internal::ShmSlot;

size_t HeartbeatOffset() {
  return (sizeof(ShmHeader) + 63) & ~size_t{63};
}

size_t SlotsOffset() {
  return (HeartbeatOffset() + kShmHeartbeatSlots * sizeof(ShmHeartbeatSlot) +
          63) &
         ~size_t{63};
}

size_t ArenaOffset(size_t num_slots) {
  return (SlotsOffset() + num_slots * sizeof(ShmSlot) + 63) & ~size_t{63};
}

// CLOCK_MONOTONIC in microseconds — the heartbeat-slot alive stamp. Only
// monotonic advancement matters to the poller, so cross-process comparability
// (same boot, same clock) is a bonus, not a requirement.
int64_t MonotonicMicros() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000000 + ts.tv_nsec / 1000;
}

// Seqlock write section around `mutate`, for any struct with a `seq` field
// (plan slots and heartbeat slots). Callers hold the slot's writer lock —
// the header mutex for plan slots, the per-process hb_mu_ for heartbeat
// slots — so there is exactly one writer; the fences pair with the matching
// snapshot readers.
template <typename SlotT, typename Fn>
void SeqlockWrite(SlotT& slot, Fn&& mutate) {
  // acq_rel: the acquire half keeps the field stores inside the odd window
  // (they cannot hoist above the increment), the release half publishes the
  // odd value itself.
  slot.seq.fetch_add(1, std::memory_order_acq_rel);
  mutate();
  slot.seq.fetch_add(1, std::memory_order_release);
}

struct SlotSnapshot {
  uint32_t state;
  int64_t iteration;
  int32_t replica;
  uint64_t offset;
  uint64_t length;
};

// Lock-free consistent read of one slot; retries while a writer is inside.
SlotSnapshot SeqlockSnapshot(const ShmSlot& slot) {
  for (;;) {
    const uint64_t s1 = slot.seq.load(std::memory_order_acquire);
    if (s1 & 1) {
      continue;  // writer inside; the critical section is a few stores
    }
    SlotSnapshot snap;
    snap.state = slot.state.load(std::memory_order_relaxed);
    snap.iteration = slot.iteration.load(std::memory_order_relaxed);
    snap.replica = slot.replica.load(std::memory_order_relaxed);
    snap.offset = slot.offset.load(std::memory_order_relaxed);
    snap.length = slot.length.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) == s1) {
      return snap;
    }
  }
}

class MutexLock {
 public:
  explicit MutexLock(pthread_mutex_t* mu) : mu_(mu) {
    const int rc = pthread_mutex_lock(mu_);
    if (rc == EOWNERDEAD) {
      // The mutex is ROBUST: a peer process died (crash, SIGKILL, a fatal
      // contract abort) while holding it. The guarded state is counters and
      // slot flips, each updated atomically under the lock, so it is
      // consistent enough to carry on — mark the mutex usable again instead
      // of wedging every surviving process forever.
      DYNAPIPE_CHECK(pthread_mutex_consistent(mu_) == 0);
      return;
    }
    DYNAPIPE_CHECK(rc == 0);
  }
  ~MutexLock() { pthread_mutex_unlock(mu_); }
  MutexLock(const MutexLock&) = delete;

 private:
  pthread_mutex_t* mu_;
};

}  // namespace

ShmInstructionStore::ShmInstructionStore(std::string name, void* base,
                                         size_t total_bytes, bool owner)
    : name_(std::move(name)), base_(base), total_bytes_(total_bytes),
      owner_(owner) {}

ShmInstructionStore::~ShmInstructionStore() {
  if (base_ != nullptr) {
    ::munmap(base_, total_bytes_);
  }
  if (owner_) {
    ::shm_unlink(name_.c_str());
  }
}

ShmHeader& ShmInstructionStore::header() const {
  return *static_cast<ShmHeader*>(base_);
}

ShmSlot* ShmInstructionStore::slots() const {
  return reinterpret_cast<ShmSlot*>(static_cast<char*>(base_) + SlotsOffset());
}

ShmHeartbeatSlot* ShmInstructionStore::heartbeat_slots() const {
  return reinterpret_cast<ShmHeartbeatSlot*>(static_cast<char*>(base_) +
                                             HeartbeatOffset());
}

char* ShmInstructionStore::arena() const {
  return static_cast<char*>(base_) + header().arena_offset;
}

std::shared_ptr<ShmInstructionStore> ShmInstructionStore::Create(
    std::string name, ShmStoreOptions options) {
  DYNAPIPE_CHECK(options.num_slots >= 1);
  DYNAPIPE_CHECK(options.arena_bytes >= 4096);
  const size_t total = ArenaOffset(options.num_slots) + options.arena_bytes;
  int fd = ::shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  if (fd < 0 && errno == EEXIST) {
    // A stale segment from a crashed owner (the destructor never ran, so it
    // never shm_unlinked) — same self-healing the socket transport applies
    // to stale socket files: remove it and claim the name. Two *live* owners
    // racing on one name is a caller bug either way; derived names are
    // unique per epoch.
    ::shm_unlink(name.c_str());
    fd = ::shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  }
  DYNAPIPE_CHECK_MSG(fd >= 0, "shm_open(" + name +
                                  ") failed: " + std::strerror(errno));
  DYNAPIPE_CHECK_MSG(::ftruncate(fd, static_cast<off_t>(total)) == 0,
                     "ftruncate(" + name + ") failed");
  void* base =
      ::mmap(nullptr, total, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  DYNAPIPE_CHECK_MSG(base != MAP_FAILED, "mmap(" + name + ") failed");

  auto* hdr = new (base) ShmHeader();
  std::memcpy(hdr->magic, internal::kShmMagic, sizeof(hdr->magic));
  hdr->version = internal::kShmVersion;
  hdr->total_bytes = total;
  hdr->num_slots = static_cast<uint32_t>(options.num_slots);
  hdr->arena_offset = ArenaOffset(options.num_slots);
  hdr->arena_bytes = options.arena_bytes;
  hdr->capacity = options.capacity;

  pthread_mutexattr_t mattr;
  pthread_mutexattr_init(&mattr);
  pthread_mutexattr_setpshared(&mattr, PTHREAD_PROCESS_SHARED);
  // ROBUST: a process dying inside a critical section (crash, SIGKILL, a
  // fatal contract abort like fetch-before-publish) hands the next locker
  // EOWNERDEAD instead of deadlocking every surviving process.
  pthread_mutexattr_setrobust(&mattr, PTHREAD_MUTEX_ROBUST);
  DYNAPIPE_CHECK(pthread_mutex_init(&hdr->mu, &mattr) == 0);
  pthread_mutexattr_destroy(&mattr);
  pthread_condattr_t cattr;
  pthread_condattr_init(&cattr);
  pthread_condattr_setpshared(&cattr, PTHREAD_PROCESS_SHARED);
  // MONOTONIC: the Push park is a timed wait (so it can reclaim dead reader
  // pins without a broadcast), and its deadline must not jump with wall-clock
  // adjustments.
  DYNAPIPE_CHECK(pthread_condattr_setclock(&cattr, CLOCK_MONOTONIC) == 0);
  DYNAPIPE_CHECK(pthread_cond_init(&hdr->cv, &cattr) == 0);
  pthread_condattr_destroy(&cattr);

  ShmHeartbeatSlot* hb_array = reinterpret_cast<ShmHeartbeatSlot*>(
      static_cast<char*>(base) + HeartbeatOffset());
  for (size_t i = 0; i < kShmHeartbeatSlots; ++i) {
    new (&hb_array[i]) ShmHeartbeatSlot();
  }
  ShmSlot* slot_array = reinterpret_cast<ShmSlot*>(
      static_cast<char*>(base) + SlotsOffset());
  for (size_t i = 0; i < options.num_slots; ++i) {
    new (&slot_array[i]) ShmSlot();
  }
  hdr->ready.store(1, std::memory_order_release);
  return std::shared_ptr<ShmInstructionStore>(
      new ShmInstructionStore(std::move(name), base, total, /*owner=*/true));
}

std::shared_ptr<ShmInstructionStore> ShmInstructionStore::Attach(
    std::string name, int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  int fd = -1;
  for (;;) {
    fd = ::shm_open(name.c_str(), O_RDWR, 0);
    if (fd >= 0) {
      struct stat st {};
      // The creator sizes the segment with ftruncate before initializing the
      // header; a zero-size segment means we raced shm_open itself.
      if (::fstat(fd, &st) == 0 && st.st_size > 0) {
        break;
      }
      ::close(fd);
      fd = -1;
    }
    DYNAPIPE_CHECK_MSG(std::chrono::steady_clock::now() < deadline,
                       "shm store: segment " + name + " never appeared");
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  struct stat st {};
  DYNAPIPE_CHECK(::fstat(fd, &st) == 0);
  const size_t total = static_cast<size_t>(st.st_size);
  void* base =
      ::mmap(nullptr, total, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  DYNAPIPE_CHECK_MSG(base != MAP_FAILED, "mmap(" + name + ") failed");
  auto* hdr = static_cast<ShmHeader*>(base);
  while (hdr->ready.load(std::memory_order_acquire) == 0) {
    DYNAPIPE_CHECK_MSG(std::chrono::steady_clock::now() < deadline,
                       "shm store: segment " + name + " never became ready");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  DYNAPIPE_CHECK_MSG(
      std::memcmp(hdr->magic, internal::kShmMagic, sizeof(hdr->magic)) == 0 &&
          hdr->version == internal::kShmVersion,
      "shm store: segment " + name + " has incompatible magic/version");
  DYNAPIPE_CHECK_MSG(hdr->total_bytes == total,
                     "shm store: segment " + name + " size mismatch");
  return std::shared_ptr<ShmInstructionStore>(
      new ShmInstructionStore(std::move(name), base, total, /*owner=*/false));
}

namespace {
common::StoreMetrics& ShmMetrics() {
  static common::StoreMetrics& m = common::StoreMetrics::For("shm");
  return m;
}

// Drops pins whose owning process no longer exists. Caller holds the header
// mutex. kill(pid, 0) == ESRCH is the liveness probe; note a zombie (dead
// but unreaped) still answers 0, so a publisher that forked its own readers
// must waitpid them before this can reclaim — unrelated processes (the
// deployment case) become ESRCH the moment they die.
void ReclaimDeadReaderPinsLocked(ShmHeader& hdr) {
  const int32_t self = static_cast<int32_t>(::getpid());
  for (uint32_t i = 0; i < internal::kShmReaderPins; ++i) {
    internal::ShmReaderPin& pin = hdr.reader_pins[i];
    if (pin.views == 0 || pin.pid == self) {
      continue;
    }
    if (::kill(static_cast<pid_t>(pin.pid), 0) != 0 && errno == ESRCH) {
      hdr.active_readers -= pin.views;
      pin.views = 0;
      pin.pid = 0;
      ++hdr.pin_reclaims;
      static common::Counter& reclaims =
          common::MetricsRegistry::Instance().GetCounter(
              "store_shm_pin_reclaims_total");
      reclaims.Add();
    }
  }
}
}  // namespace

ptrdiff_t ShmInstructionStore::ReserveLocked(int64_t iteration, int32_t replica,
                                             size_t bytes,
                                             uint64_t* offset_out) {
  ShmHeader& hdr = header();
  DYNAPIPE_CHECK_MSG(bytes <= hdr.arena_bytes,
                     "shm store: plan larger than the whole arena");
  std::optional<common::LatencyTimer> park_timer;
  for (;;) {
    if (hdr.shutdown != 0) {
      return -1;
    }
    // Double publish aborts, capacity notwithstanding: scan claimed keys.
    ShmSlot* slot_array = slots();
    for (uint64_t i = 0; i < hdr.slots_used; ++i) {
      const uint32_t state = slot_array[i].state.load(std::memory_order_relaxed);
      if ((state == internal::kReserved || state == internal::kPublished) &&
          slot_array[i].iteration.load(std::memory_order_relaxed) == iteration &&
          slot_array[i].replica.load(std::memory_order_relaxed) == replica) {
        DYNAPIPE_CHECK_MSG(false,
                           "plan already published for this iteration/replica");
      }
    }
    // Arena high-water mark: when the append offset (or the slot table) would
    // overflow and every plan has been fetched and released, reclaim the
    // whole arena at once — plans are immutable, so reclamation is all-or-
    // nothing rather than per-entry.
    if ((hdr.slots_used >= hdr.num_slots ||
         hdr.arena_used + bytes > hdr.arena_bytes) &&
        hdr.occupied == 0) {
      if (hdr.active_readers != 0) {
        // Views pin the arena, but a pin whose owner was SIGKILLed between
        // fetch and release would otherwise pin it *forever* — probe the
        // pinners and drop the dead before deciding the rewind is blocked.
        ReclaimDeadReaderPinsLocked(hdr);
      }
      if (hdr.active_readers == 0) {
        for (uint64_t i = 0; i < hdr.slots_used; ++i) {
          SeqlockWrite(slot_array[i], [&] {
            slot_array[i].state.store(internal::kEmpty,
                                      std::memory_order_relaxed);
          });
        }
        hdr.slots_used = 0;
        hdr.arena_used = 0;
        ++hdr.rewinds;
      }
    }
    const bool capacity_ok = hdr.capacity == 0 || hdr.occupied < hdr.capacity;
    const bool slot_ok = hdr.slots_used < hdr.num_slots;
    const bool arena_ok = hdr.arena_used + bytes <= hdr.arena_bytes;
    if (capacity_ok && slot_ok && arena_ok) {
      break;
    }
    // Park-time instrumentation starts only on the slow path: an uncontended
    // reserve never reads a clock, keeping the publish fast path to relaxed
    // loads only.
    if (!park_timer.has_value()) {
      park_timer.emplace();
    }
    // Timed wait, not wait: a reader that died holding a view never
    // broadcasts, so a parked publisher must wake on its own to re-run the
    // dead-pin reclaim above. 100 ms bounds the reclaim latency without
    // turning the park into a spin.
    timespec deadline{};
    ::clock_gettime(CLOCK_MONOTONIC, &deadline);
    deadline.tv_nsec += 100 * 1000000;
    if (deadline.tv_nsec >= 1000000000) {
      deadline.tv_nsec -= 1000000000;
      ++deadline.tv_sec;
    }
    const int rc = pthread_cond_timedwait(&hdr.cv, &hdr.mu, &deadline);
    if (rc == EOWNERDEAD) {
      // A peer died holding the robust mutex while we were parked; the wait
      // re-acquired it with the dead owner's state. Same recovery as
      // MutexLock: mark it consistent and re-evaluate.
      DYNAPIPE_CHECK(pthread_mutex_consistent(&hdr.mu) == 0);
    } else {
      DYNAPIPE_CHECK(rc == 0 || rc == ETIMEDOUT);
    }
  }
  if (park_timer.has_value()) {
    park_timer->ObserveInto(ShmMetrics().park_us);
  }
  const ptrdiff_t slot_i = static_cast<ptrdiff_t>(hdr.slots_used++);
  const uint64_t offset = hdr.arena_offset + hdr.arena_used;
  hdr.arena_used += bytes;
  ++hdr.occupied;
  ShmSlot& slot = slots()[slot_i];
  SeqlockWrite(slot, [&] {
    slot.state.store(internal::kReserved, std::memory_order_relaxed);
    slot.iteration.store(iteration, std::memory_order_relaxed);
    slot.replica.store(replica, std::memory_order_relaxed);
    slot.offset.store(offset, std::memory_order_relaxed);
    slot.length.store(bytes, std::memory_order_relaxed);
  });
  *offset_out = offset;
  return slot_i;
}

bool ShmInstructionStore::PushBytes(int64_t iteration, int32_t replica,
                                    std::string_view bytes) {
  // Disarmed cost discipline: everything below is relaxed loads and branches
  // — no clock reads, no allocation — so the zero-copy publish path keeps
  // its allocation-free budget (pinned by bench_plan_distribution's
  // disarmed row).
  common::StoreMetrics& metrics = ShmMetrics();
  metrics.push_total.Add();
  metrics.bytes_pushed.Add(static_cast<int64_t>(bytes.size()));
  const common::LatencyTimer push_timer;
  common::TraceSpan span("published", "plan", iteration, replica);
  ShmHeader& hdr = header();
  ptrdiff_t slot_i = -1;
  uint64_t offset = 0;
  {
    MutexLock lock(&hdr.mu);
    slot_i = ReserveLocked(iteration, replica, bytes.size(), &offset);
  }
  if (slot_i < 0) {
    return false;  // shutdown dropped the plan
  }
  // Write the payload outside the lock: the reserved range is exclusively
  // ours, and no reader can see the slot until the publish flip below. This
  // is the single copy of the whole path — encode scratch to mapping.
  std::memcpy(static_cast<char*>(base_) + offset, bytes.data(), bytes.size());
  {
    MutexLock lock(&hdr.mu);
    ShmSlot& slot = slots()[slot_i];
    SeqlockWrite(slot, [&] {
      slot.state.store(internal::kPublished, std::memory_order_relaxed);
    });
    ++hdr.resident;
    hdr.serialized_bytes_total += static_cast<int64_t>(bytes.size());
    pthread_cond_broadcast(&hdr.cv);
  }
  push_timer.ObserveInto(metrics.push_us);
  return true;
}

void ShmInstructionStore::Push(int64_t iteration, int32_t replica,
                               sim::ExecutionPlan plan) {
  // Per-thread scratch: steady-state publishing allocates nothing once the
  // buffer has grown to plan size.
  thread_local std::string scratch;
  service::EncodeExecutionPlanInto(plan, &scratch);
  PushBytes(iteration, replica, scratch);
}

ShmInstructionStore::PlanView ShmInstructionStore::AcquireView(
    int64_t iteration, int32_t replica) {
  ShmHeader& hdr = header();
  MutexLock lock(&hdr.mu);
  ShmSlot* slot_array = slots();
  for (uint64_t i = 0; i < hdr.slots_used; ++i) {
    ShmSlot& slot = slot_array[i];
    if (slot.state.load(std::memory_order_relaxed) == internal::kPublished &&
        slot.iteration.load(std::memory_order_relaxed) == iteration &&
        slot.replica.load(std::memory_order_relaxed) == replica) {
      SeqlockWrite(slot, [&] {
        slot.state.store(internal::kConsumed, std::memory_order_relaxed);
      });
      --hdr.resident;
      --hdr.occupied;
      // Pin the arena until ReleaseView, tagged with our pid so the pin dies
      // with us: a crashed reader's pin is reclaimed by the rewind check
      // instead of parking publishers forever.
      const int32_t self = static_cast<int32_t>(::getpid());
      internal::ShmReaderPin* pin = nullptr;
      for (uint32_t p = 0; p < internal::kShmReaderPins; ++p) {
        internal::ShmReaderPin& candidate = hdr.reader_pins[p];
        if (candidate.views > 0 && candidate.pid == self) {
          pin = &candidate;
          break;
        }
        if (pin == nullptr && candidate.views == 0) {
          pin = &candidate;  // first free; keep scanning for our own
        }
      }
      DYNAPIPE_CHECK_MSG(pin != nullptr,
                         "shm store: reader pin table exhausted");
      pin->pid = self;
      ++pin->views;
      ++hdr.active_readers;
      pthread_cond_broadcast(&hdr.cv);  // unblock a capacity-parked Push
      return PlanView(
          this,
          std::string_view(
              static_cast<const char*>(base_) +
                  slot.offset.load(std::memory_order_relaxed),
              slot.length.load(std::memory_order_relaxed)));
    }
  }
  DYNAPIPE_CHECK_MSG(false, "fetching unpublished plan");
}

void ShmInstructionStore::ReleaseView() {
  ShmHeader& hdr = header();
  MutexLock lock(&hdr.mu);
  const int32_t self = static_cast<int32_t>(::getpid());
  internal::ShmReaderPin* pin = nullptr;
  for (uint32_t p = 0; p < internal::kShmReaderPins; ++p) {
    if (hdr.reader_pins[p].views > 0 && hdr.reader_pins[p].pid == self) {
      pin = &hdr.reader_pins[p];
      break;
    }
  }
  DYNAPIPE_CHECK_MSG(pin != nullptr, "shm store: releasing an unheld view");
  --pin->views;
  if (pin->views == 0) {
    pin->pid = 0;
  }
  DYNAPIPE_CHECK(hdr.active_readers > 0);
  if (--hdr.active_readers == 0) {
    pthread_cond_broadcast(&hdr.cv);  // a rewind may be waiting on us
  }
}

ShmInstructionStore::PlanView::PlanView(PlanView&& other) noexcept
    : store_(other.store_), bytes_(other.bytes_) {
  other.store_ = nullptr;
}

ShmInstructionStore::PlanView::~PlanView() {
  if (store_ != nullptr) {
    store_->ReleaseView();
  }
}

sim::ExecutionPlan ShmInstructionStore::Fetch(int64_t iteration,
                                              int32_t replica) {
  common::StoreMetrics& metrics = ShmMetrics();
  metrics.fetch_total.Add();
  const common::LatencyTimer fetch_timer;
  std::optional<PlanView> view;
  {
    common::TraceSpan fetched("fetched", "plan", iteration, replica);
    view.emplace(AcquireView(iteration, replica));
  }
  // Decode in place: the string_view aliases the mapping, so the executor
  // side of the hop does no copy at all.
  std::string error;
  std::optional<sim::ExecutionPlan> plan;
  {
    common::TraceSpan decoded("decoded", "plan", iteration, replica);
    plan = service::TryDecodeExecutionPlan(view->bytes(), &error);
  }
  fetch_timer.ObserveInto(metrics.fetch_us);
  DYNAPIPE_CHECK_MSG(plan.has_value(),
                     "shm store: fetched plan is corrupt (" + error + ")");
  return std::move(*plan);
}

bool ShmInstructionStore::Contains(int64_t iteration, int32_t replica) const {
  // Lock-free: seqlock snapshots instead of the cross-process mutex, so a
  // polling executor never contends with a publisher mid-push.
  const ShmHeader& hdr = header();
  const ShmSlot* slot_array = slots();
  for (uint32_t i = 0; i < hdr.num_slots; ++i) {
    const SlotSnapshot snap = SeqlockSnapshot(slot_array[i]);
    if (snap.state == internal::kPublished && snap.iteration == iteration &&
        snap.replica == replica) {
      return true;
    }
  }
  return false;
}

size_t ShmInstructionStore::size() const {
  ShmHeader& hdr = header();
  MutexLock lock(&hdr.mu);
  return static_cast<size_t>(hdr.resident);
}

void ShmInstructionStore::Shutdown() {
  ShmHeader& hdr = header();
  MutexLock lock(&hdr.mu);
  hdr.shutdown = 1;
  pthread_cond_broadcast(&hdr.cv);
}

int64_t ShmInstructionStore::serialized_bytes_total() const {
  ShmHeader& hdr = header();
  MutexLock lock(&hdr.mu);
  return hdr.serialized_bytes_total;
}

int64_t ShmInstructionStore::arena_rewinds() const {
  ShmHeader& hdr = header();
  MutexLock lock(&hdr.mu);
  return hdr.rewinds;
}

int64_t ShmInstructionStore::pin_reclaims() const {
  ShmHeader& hdr = header();
  MutexLock lock(&hdr.mu);
  return hdr.pin_reclaims;
}

// --- Liveness channel ---

ShmHeartbeatSlot& ShmInstructionStore::HeartbeatSlotLocked(int32_t replica) {
  const auto cached = hb_claimed_.find(replica);
  if (cached != hb_claimed_.end()) {
    return heartbeat_slots()[cached->second];
  }
  // First use: claim under the header mutex (claiming is rare; the per-beat
  // path never takes the cross-process lock). Re-claim a slot already tagged
  // with this replica — a restarted executor inherits its predecessor's slot
  // rather than leaking one per restart.
  ShmHeader& hdr = header();
  MutexLock lock(&hdr.mu);
  ShmHeartbeatSlot* hb = heartbeat_slots();
  ptrdiff_t free_i = -1;
  ptrdiff_t claim_i = -1;
  for (uint32_t i = 0; i < kShmHeartbeatSlots; ++i) {
    const int32_t owner = hb[i].replica.load(std::memory_order_acquire);
    if (owner == replica) {
      claim_i = static_cast<ptrdiff_t>(i);
      break;
    }
    if (free_i < 0 && owner < 0) {
      free_i = static_cast<ptrdiff_t>(i);
    }
  }
  if (claim_i < 0) {
    DYNAPIPE_CHECK_MSG(free_i >= 0,
                       "shm store: heartbeat slot table exhausted");
    claim_i = free_i;
  }
  ShmHeartbeatSlot& slot = hb[claim_i];
  SeqlockWrite(slot, [&] {
    slot.pid.store(static_cast<int32_t>(::getpid()),
                   std::memory_order_relaxed);
    slot.detached.store(0, std::memory_order_relaxed);
    // replica last, release: a poller that sees the slot claimed sees the
    // rest of the claim too.
    slot.replica.store(replica, std::memory_order_release);
  });
  slot.last_alive_us.store(MonotonicMicros(), std::memory_order_release);
  hb_claimed_.emplace(replica, static_cast<uint32_t>(claim_i));
  return slot;
}

bool ShmInstructionStore::Heartbeat(int32_t replica, int64_t iteration,
                                    double wall_ms) {
  std::lock_guard<std::mutex> lock(hb_mu_);  // one seqlock writer per slot
  ShmHeartbeatSlot& slot = HeartbeatSlotLocked(replica);
  SeqlockWrite(slot, [&] {
    const uint64_t beat = slot.beats.load(std::memory_order_relaxed);
    internal::ShmHeartbeatEntry& entry = slot.ring[beat % kShmHeartbeatRing];
    entry.iteration.store(iteration, std::memory_order_relaxed);
    entry.wall_us.store(static_cast<uint64_t>(wall_ms * 1000.0),
                        std::memory_order_relaxed);
    slot.beats.store(beat + 1, std::memory_order_relaxed);
  });
  slot.last_alive_us.store(MonotonicMicros(), std::memory_order_release);
  return true;
}

void ShmInstructionStore::AnnounceReplica(int32_t replica) {
  std::lock_guard<std::mutex> lock(hb_mu_);
  HeartbeatSlotLocked(replica);  // claim + alive stamp
}

void ShmInstructionStore::TouchReplica(int32_t replica) {
  std::lock_guard<std::mutex> lock(hb_mu_);
  ShmHeartbeatSlot& slot = HeartbeatSlotLocked(replica);
  slot.last_alive_us.store(MonotonicMicros(), std::memory_order_release);
}

void ShmInstructionStore::DetachReplica(int32_t replica) {
  std::lock_guard<std::mutex> lock(hb_mu_);
  ShmHeartbeatSlot& slot = HeartbeatSlotLocked(replica);
  SeqlockWrite(slot, [&] {
    slot.detached.store(1, std::memory_order_relaxed);
  });
  slot.last_alive_us.store(MonotonicMicros(), std::memory_order_release);
}

void ShmInstructionStore::RequestDrain(int32_t replica) {
  std::lock_guard<std::mutex> lock(hb_mu_);
  ShmHeartbeatSlot& slot = HeartbeatSlotLocked(replica);
  SeqlockWrite(slot, [&] {
    slot.detached.store(2, std::memory_order_relaxed);
  });
  slot.last_alive_us.store(MonotonicMicros(), std::memory_order_release);
}

bool ShmInstructionStore::DrainAcknowledged(int32_t replica) {
  std::lock_guard<std::mutex> lock(hb_mu_);
  ShmHeartbeatSlot& slot = HeartbeatSlotLocked(replica);
  return slot.detached.load(std::memory_order_acquire) == 3;
}

void ShmInstructionStore::AcknowledgeDrain(int32_t replica) {
  // Publisher side: must NOT go through HeartbeatSlotLocked — that would
  // claim (and re-initialize) the slot for *this* process, clobbering the
  // executor's pid and drain word. Scan for the slot the executor owns and
  // CAS the drain state, so a racing final goodbye (detached = 1) survives.
  ShmHeartbeatSlot* hb = heartbeat_slots();
  for (uint32_t i = 0; i < kShmHeartbeatSlots; ++i) {
    if (hb[i].replica.load(std::memory_order_acquire) != replica) {
      continue;
    }
    uint32_t expected = 2;
    hb[i].detached.compare_exchange_strong(expected, 3,
                                           std::memory_order_acq_rel);
    return;
  }
}

// --- Recovery surface ---

std::vector<int64_t> ShmInstructionStore::PendingIterations(
    int32_t replica) const {
  ShmHeader& hdr = header();
  MutexLock lock(&hdr.mu);
  std::vector<int64_t> iterations;
  const ShmSlot* slot_array = slots();
  for (uint64_t i = 0; i < hdr.slots_used; ++i) {
    if (slot_array[i].state.load(std::memory_order_relaxed) ==
            internal::kPublished &&
        slot_array[i].replica.load(std::memory_order_relaxed) == replica) {
      iterations.push_back(
          slot_array[i].iteration.load(std::memory_order_relaxed));
    }
  }
  // Slots are in publish order, not key order — sort to match the interface
  // contract (ascending).
  std::sort(iterations.begin(), iterations.end());
  return iterations;
}

runtime::RepostOutcome ShmInstructionStore::Repost(int64_t src_iteration,
                                                   int32_t src_replica,
                                                   int64_t dst_iteration,
                                                   int32_t dst_replica) {
  ShmHeader& hdr = header();
  MutexLock lock(&hdr.mu);
  ShmSlot* slot_array = slots();
  ptrdiff_t src_i = -1;
  for (uint64_t i = 0; i < hdr.slots_used; ++i) {
    const uint32_t state = slot_array[i].state.load(std::memory_order_relaxed);
    const int64_t iteration =
        slot_array[i].iteration.load(std::memory_order_relaxed);
    const int32_t replica =
        slot_array[i].replica.load(std::memory_order_relaxed);
    if (state == internal::kPublished && iteration == src_iteration &&
        replica == src_replica) {
      src_i = static_cast<ptrdiff_t>(i);
    }
    if ((state == internal::kReserved || state == internal::kPublished) &&
        iteration == dst_iteration && replica == dst_replica) {
      return runtime::RepostOutcome::kDestinationTaken;  // leave both alone
    }
  }
  if (src_i < 0) {
    return runtime::RepostOutcome::kSourceGone;
  }
  // A draining destination reads exactly like a taken key: burn the spare
  // key and let the caller's retry chain pick another survivor.
  if (IsReplicaFenced(dst_replica)) {
    return runtime::RepostOutcome::kDestinationTaken;
  }
  // A key move, not a byte move: the arena payload stays where it is, only
  // the index entry is re-keyed — reposted plans stay byte-identical.
  ShmSlot& slot = slot_array[src_i];
  SeqlockWrite(slot, [&] {
    slot.iteration.store(dst_iteration, std::memory_order_relaxed);
    slot.replica.store(dst_replica, std::memory_order_relaxed);
  });
  return runtime::RepostOutcome::kMoved;
}

void ShmInstructionStore::FenceReplica(int32_t replica) {
  std::lock_guard<std::mutex> lock(fence_mu_);
  if (std::find(fenced_.begin(), fenced_.end(), replica) == fenced_.end()) {
    fenced_.push_back(replica);
  }
}

void ShmInstructionStore::UnfenceReplica(int32_t replica) {
  std::lock_guard<std::mutex> lock(fence_mu_);
  fenced_.erase(std::remove(fenced_.begin(), fenced_.end(), replica),
                fenced_.end());
}

bool ShmInstructionStore::IsReplicaFenced(int32_t replica) const {
  std::lock_guard<std::mutex> lock(fence_mu_);
  return std::find(fenced_.begin(), fenced_.end(), replica) != fenced_.end();
}

size_t ShmInstructionStore::DropReplica(int32_t replica) {
  ShmHeader& hdr = header();
  size_t dropped = 0;
  {
    MutexLock lock(&hdr.mu);
    ShmSlot* slot_array = slots();
    for (uint64_t i = 0; i < hdr.slots_used; ++i) {
      ShmSlot& slot = slot_array[i];
      if (slot.state.load(std::memory_order_relaxed) == internal::kPublished &&
          slot.replica.load(std::memory_order_relaxed) == replica) {
        SeqlockWrite(slot, [&] {
          slot.state.store(internal::kConsumed, std::memory_order_relaxed);
        });
        --hdr.resident;
        --hdr.occupied;
        ++dropped;
      }
    }
    if (dropped > 0) {
      pthread_cond_broadcast(&hdr.cv);  // freed capacity slots
    }
  }
  return dropped;
}

// --- ShmHeartbeatPoller ---

ShmHeartbeatPoller::ShmHeartbeatPoller(
    std::shared_ptr<ShmInstructionStore> store, runtime::HeartbeatSink* sink,
    int poll_interval_ms)
    : store_(std::move(store)),
      sink_(sink),
      poll_interval_ms_(poll_interval_ms),
      observed_(kShmHeartbeatSlots) {
  thread_ = std::thread([this] { Loop(); });
}

ShmHeartbeatPoller::~ShmHeartbeatPoller() {
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stop_ = true;
  }
  stop_cv_.notify_all();
  thread_.join();
}

void ShmHeartbeatPoller::Loop() {
  std::unique_lock<std::mutex> lock(stop_mu_);
  while (!stop_) {
    lock.unlock();
    PollOnce();
    lock.lock();
    stop_cv_.wait_for(lock, std::chrono::milliseconds(poll_interval_ms_),
                      [&] { return stop_; });
  }
}

int ShmHeartbeatPoller::PollOnce() {
  int delivered = 0;
  ShmHeartbeatSlot* hb = store_->heartbeat_slots();
  for (uint32_t i = 0; i < kShmHeartbeatSlots; ++i) {
    ShmHeartbeatSlot& slot = hb[i];
    const int32_t replica = slot.replica.load(std::memory_order_acquire);
    if (replica < 0) {
      continue;  // unclaimed
    }
    SlotObservation& obs = observed_[i];
    if (obs.replica != replica) {
      obs = SlotObservation{};
      obs.replica = replica;
    }
    // Consistent snapshot of the beat counter + the ring entries we are
    // about to drain, seqlock-retried against a concurrent writer.
    uint64_t beats = 0;
    uint32_t detached = 0;
    int64_t ring_iter[kShmHeartbeatRing];
    uint64_t ring_wall[kShmHeartbeatRing];
    for (;;) {
      const uint64_t s1 = slot.seq.load(std::memory_order_acquire);
      if (s1 & 1) {
        continue;  // writer inside; the critical section is a few stores
      }
      beats = slot.beats.load(std::memory_order_relaxed);
      detached = slot.detached.load(std::memory_order_relaxed);
      for (uint32_t r = 0; r < kShmHeartbeatRing; ++r) {
        ring_iter[r] = slot.ring[r].iteration.load(std::memory_order_relaxed);
        ring_wall[r] = slot.ring[r].wall_us.load(std::memory_order_relaxed);
      }
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot.seq.load(std::memory_order_relaxed) == s1) {
        break;
      }
    }
    const int64_t last_alive =
        slot.last_alive_us.load(std::memory_order_acquire);

    if (!obs.attached_delivered) {
      sink_->OnReplicaAttached(replica);
      obs.attached_delivered = true;
      ++delivered;
    }
    if (beats > obs.beats) {
      // Forward every completion we have not yet seen, oldest first. If the
      // writer lapped the ring since our last visit, the overwritten oldest
      // are gone — skip to what survives.
      uint64_t first = obs.beats;
      if (beats - first > kShmHeartbeatRing) {
        first = beats - kShmHeartbeatRing;
      }
      for (uint64_t b = first; b < beats; ++b) {
        const uint32_t r = static_cast<uint32_t>(b % kShmHeartbeatRing);
        sink_->OnHeartbeat(replica, ring_iter[r],
                           static_cast<double>(ring_wall[r]) / 1000.0);
        ++delivered;
      }
      obs.beats = beats;
    } else if (last_alive > obs.last_alive_us && obs.last_alive_us != 0) {
      // Alive but between completions (a poll-loop touch): refresh the
      // monitor's deadline without a wall sample. OnReplicaAttached is the
      // sink's liveness-touch verb — for an already-alive replica it only
      // resets last_seen.
      sink_->OnReplicaAttached(replica);
      ++delivered;
    }
    obs.last_alive_us = last_alive;

    if (detached == 1 && !obs.detach_delivered) {
      sink_->OnReplicaDisconnected(replica, /*clean=*/true);
      obs.detach_delivered = true;
      ++delivered;
    } else if (detached == 2 && !obs.drain_delivered) {
      // Drain requested: the sink's event chain (monitor -> recovery ->
      // membership) fences and reposts synchronously; the membership
      // coordinator acknowledges via AcknowledgeDrain when the handoff is
      // done.
      sink_->OnReplicaDrainRequested(replica);
      obs.drain_delivered = true;
      ++delivered;
    } else if (detached == 0) {
      obs.detach_delivered = false;  // re-announced after a clean goodbye
      obs.drain_delivered = false;
    }
  }
  return delivered;
}

}  // namespace dynapipe::transport
