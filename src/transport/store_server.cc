#include "src/transport/store_server.h"

#include <utility>

#include "src/common/check.h"
#include "src/service/plan_serde.h"
#include "src/transport/frame.h"

namespace dynapipe::transport {

InstructionStoreServer::InstructionStoreServer(Transport* transport,
                                               runtime::InstructionStore* store)
    : transport_(transport), store_(store) {
  DYNAPIPE_CHECK(transport_ != nullptr);
  DYNAPIPE_CHECK(store_ != nullptr);
  DYNAPIPE_CHECK_MSG(store_->options().serialized,
                     "the store behind a transport server must be serialized "
                     "(the wire carries plan_serde bytes)");
  accept_thread_ = std::thread([this] { AcceptLoop(); });
}

InstructionStoreServer::~InstructionStoreServer() { Stop(); }

void InstructionStoreServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) {
      return;
    }
    stopped_ = true;
  }
  transport_->Close();
  accept_thread_.join();
  // Handlers parked in the store's capacity wait hold no way out except the
  // store's own shutdown; at server teardown the pipeline is over, so
  // dropping those plans is the correct outcome (same as the in-process
  // store's teardown contract).
  store_->Shutdown();
  std::vector<std::unique_ptr<Handler>> handlers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    handlers.swap(handlers_);
  }
  for (const auto& handler : handlers) {
    // A handler can also be parked reading from (or replying to) a client
    // that connected and went silent; closing the stream unblocks it so the
    // join below cannot hang teardown.
    handler->conn->Close();
    handler->thread.join();
  }
}

void InstructionStoreServer::ReapFinishedLocked() {
  for (auto it = handlers_.begin(); it != handlers_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      (*it)->thread.join();  // already exited; join is immediate
      it = handlers_.erase(it);
    } else {
      ++it;
    }
  }
}

void InstructionStoreServer::AcceptLoop() {
  while (std::unique_ptr<Stream> conn = transport_->Accept()) {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) {
      break;  // raced with Stop; drop the connection
    }
    // The client opens one connection per request, so finished handlers
    // accumulate at request rate; reap them here to keep the list bounded by
    // concurrently-live connections.
    ReapFinishedLocked();
    auto handler = std::make_unique<Handler>();
    handler->conn = std::move(conn);
    Handler* h = handler.get();
    handlers_.push_back(std::move(handler));
    // `h` stays valid until joined: reaping joins only after `done`, and the
    // swap in Stop() keeps the unique_ptrs alive through their joins.
    h->thread = std::thread([this, h] {
      HandleConnection(*h->conn);
      h->done.store(true, std::memory_order_release);
    });
  }
}

void InstructionStoreServer::HandleConnection(Stream& conn) {
  std::optional<Frame> request = ReadFrame(conn);
  if (!request.has_value()) {
    return;  // malformed or torn connection: drop it, never crash the server
  }
  Frame reply;
  reply.iteration = request->iteration;
  reply.replica = request->replica;
  switch (request->type) {
    case FrameType::kPush:
      // Blocks here while the store is at capacity — the delayed kOk is the
      // client's backpressure.
      store_->PushBytes(request->iteration, request->replica,
                        std::move(request->payload));
      reply.type = FrameType::kOk;
      break;
    case FrameType::kFetch:
      reply.type = FrameType::kPlanBytes;
      reply.payload = store_->FetchBytes(request->iteration, request->replica);
      break;
    case FrameType::kContains:
      reply.type = FrameType::kBool;
      reply.payload.push_back(
          store_->Contains(request->iteration, request->replica) ? '\1' : '\0');
      break;
    case FrameType::kSize:
      reply.type = FrameType::kCount;
      service::AppendVarint(store_->size(), &reply.payload);
      break;
    case FrameType::kShutdown:
      store_->Shutdown();
      reply.type = FrameType::kOk;
      break;
    default:
      return;  // unknown request type: drop the connection
  }
  // Count before replying: a client that has its reply must observe the
  // request as served.
  requests_served_.fetch_add(1);
  WriteFrame(conn, reply);
}

}  // namespace dynapipe::transport
