#include "src/transport/store_server.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <optional>
#include <utility>

#include "src/common/check.h"
#include "src/common/trace.h"
#include "src/service/plan_serde.h"
#include "src/transport/frame.h"
#include "src/transport/mux.h"

namespace dynapipe::transport {

InstructionStoreServer::InstructionStoreServer(Transport* transport,
                                               runtime::InstructionStore* store)
    : transport_(transport), store_(store) {
  DYNAPIPE_CHECK(transport_ != nullptr);
  DYNAPIPE_CHECK(store_ != nullptr);
  DYNAPIPE_CHECK_MSG(store_->options().serialized,
                     "the store behind a transport server must be serialized "
                     "(the wire carries plan_serde bytes)");
  accept_thread_ = std::thread([this] { AcceptLoop(); });
}

InstructionStoreServer::~InstructionStoreServer() { Stop(); }

void InstructionStoreServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) {
      return;
    }
    stopped_ = true;
  }
  stopping_.store(true, std::memory_order_release);
  transport_->Close();
  accept_thread_.join();
  // Push workers parked in the store's capacity wait hold no way out except
  // the store's own shutdown; at server teardown the pipeline is over, so
  // dropping those plans is the correct outcome (same as the in-process
  // store's teardown contract).
  store_->Shutdown();
  std::vector<std::shared_ptr<Handler>> handlers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    handlers.swap(handlers_);
  }
  for (const auto& handler : handlers) {
    // A demux loop can also be parked reading from (or replying to) a client
    // that connected and went silent; closing the stream unblocks it so the
    // join below cannot hang teardown.
    handler->conn->Close();
    handler->thread.join();
  }
}

void InstructionStoreServer::ReapFinishedLocked() {
  for (auto it = handlers_.begin(); it != handlers_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      (*it)->thread.join();  // already exited; join is immediate
      it = handlers_.erase(it);
    } else {
      ++it;
    }
  }
}

void InstructionStoreServer::AcceptLoop() {
  while (std::unique_ptr<Stream> conn = transport_->Accept()) {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) {
      break;  // raced with Stop; drop the connection
    }
    // One-shot clients open a connection per request, so finished handlers
    // accumulate at request rate; reap them here to keep the list bounded by
    // concurrently-live connections.
    ReapFinishedLocked();
    auto handler = std::make_shared<Handler>();
    handler->conn = std::move(conn);
    Handler* h = handler.get();
    handlers_.push_back(std::move(handler));
    // `h` stays valid until joined: reaping joins only after `done`, and the
    // swap in Stop() keeps the shared_ptrs alive through their joins.
    h->thread = std::thread([this, h] {
      HandleConnection(*h);
      // Dropping a connection (clean EOF, malformed frame, misbehaving
      // peer) must be visible to the peer: a client parked reading a reply
      // that will never come unblocks here instead of at reap time.
      h->conn->Close();
      h->done.store(true, std::memory_order_release);
    });
  }
}

std::vector<RemoteReplicaStats> InstructionStoreServer::CollectRemoteStats(
    int timeout_ms) {
  // Snapshot the stats-capable handlers that have a replica attached, then
  // send each one a kStatsRequest tagged with a freshly minted id. The
  // handler threads deliver matching kStatsReply frames into pending_stats_.
  std::vector<std::shared_ptr<Handler>> targets;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) {
      return {};
    }
    for (const std::shared_ptr<Handler>& h : handlers_) {
      if (h->done.load(std::memory_order_acquire) ||
          !h->stats_capable.load(std::memory_order_relaxed)) {
        continue;
      }
      std::lock_guard<std::mutex> attach_lock(h->attach_mu);
      if (!h->attached.empty()) {
        targets.push_back(h);
      }
    }
  }
  std::vector<uint64_t> ids;
  for (const std::shared_ptr<Handler>& h : targets) {
    uint64_t id;
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      id = next_stats_request_id_++;
      PendingStats& pending = pending_stats_[id];
      std::lock_guard<std::mutex> attach_lock(h->attach_mu);
      pending.result.replicas = h->attached;
    }
    Frame request;
    request.type = FrameType::kStatsRequest;
    request.request_id = id;
    bool sent;
    {
      std::lock_guard<std::mutex> lock(h->write_mu);
      sent = WriteFrame(*h->conn, request);
    }
    if (sent) {
      ids.push_back(id);
    } else {
      std::lock_guard<std::mutex> lock(stats_mu_);
      pending_stats_.erase(id);
    }
  }

  std::vector<RemoteReplicaStats> results;
  std::unique_lock<std::mutex> lock(stats_mu_);
  stats_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms), [&] {
    for (const uint64_t id : ids) {
      const auto it = pending_stats_.find(id);
      if (it != pending_stats_.end() && !it->second.done) {
        return false;
      }
    }
    return true;
  });
  for (const uint64_t id : ids) {
    const auto it = pending_stats_.find(id);
    if (it != pending_stats_.end()) {
      if (it->second.done) {
        results.push_back(std::move(it->second.result));
      }
      pending_stats_.erase(it);
    }
  }
  return results;
}

void InstructionStoreServer::HandleConnection(Handler& handler) {
  Stream& conn = *handler.conn;
  // Replies come from three threads — the demux loop below (inline replies),
  // the push worker (deferred kPush replies), and CollectRemoteStats
  // (server-initiated kStatsRequest) — so frame writes are serialized per
  // connection through the handler's write lock.
  std::mutex& write_mu = handler.write_mu;
  const auto write_reply = [&](const Frame& reply) {
    std::lock_guard<std::mutex> lock(write_mu);
    // Count before replying: a client that has its reply must observe the
    // request as served. A reply to a vanished client fails harmlessly; the
    // demux loop notices the dead stream on its next read.
    requests_served_.fetch_add(1);
    WriteFrame(conn, reply);
  };

  // The connection's push worker: runs deferred kPush requests in arrival
  // order, parking in the store's capacity wait as needed. A parked push
  // never stalls the demux loop, so the fetch that frees the slot can arrive
  // on this very connection — that is what preserves blocking-Push semantics
  // over a multiplexed stream. Spawned lazily on the first kPush: fetch-only
  // connections (and every one-shot non-push request) never pay the second
  // thread.
  std::mutex push_mu;
  std::condition_variable push_cv;
  std::deque<Frame> push_queue;
  bool conn_done = false;
  std::thread push_worker;
  const auto push_worker_loop = [&] {
    for (;;) {
      Frame request;
      {
        std::unique_lock<std::mutex> lock(push_mu);
        push_cv.wait(lock,
                     [&] { return !push_queue.empty() || conn_done; });
        if (push_queue.empty()) {
          return;  // connection over and queue drained
        }
        request = std::move(push_queue.front());
        push_queue.pop_front();
      }
      // Blocks here while the store is at capacity — the delayed kOk is the
      // client's backpressure. Shutdown (ours at Stop, or a client's
      // kShutdown) unblocks it; the dropped plan still gets its kOk, same as
      // the in-process Push returning after shutdown.
      store_->PushBytes(request.iteration, request.replica,
                        std::move(request.payload));
      Frame reply;
      reply.type = FrameType::kOk;
      reply.request_id = request.request_id;
      reply.iteration = request.iteration;
      reply.replica = request.replica;
      write_reply(reply);
    }
  };
  // Replicas announced on this connection (kAttach) that have not said
  // kDetach. If the connection ends while any remain, the executor vanished
  // — SIGKILL, crash, torn transport — and the liveness sink hears about it
  // as an *unclean* disconnect. Suppressed while the server itself is
  // stopping: teardown closes every stream, and that must not declare the
  // whole fleet dead. Lives on the handler (under attach_mu) so
  // CollectRemoteStats can label this connection's snapshot with its
  // replicas; this demux thread is the only writer.
  std::vector<int32_t>& attached = handler.attached;
  const auto finish = [&] {
    {
      // Scope the lock to the attach-list mutation: joining a push worker
      // parked in a capacity wait below can take a while, and
      // CollectRemoteStats must not block on attach_mu for that long.
      std::lock_guard<std::mutex> attach_lock(handler.attach_mu);
      for (const int32_t replica : attached) {
        if (!stopping_.load(std::memory_order_acquire)) {
          store_->NotifyReplicaDisconnected(replica, /*clean=*/false);
        }
      }
      attached.clear();
    }
    if (!push_worker.joinable()) {
      return;  // no kPush ever arrived
    }
    {
      std::lock_guard<std::mutex> lock(push_mu);
      conn_done = true;
    }
    push_cv.notify_all();
    push_worker.join();
  };

  for (;;) {
    std::optional<Frame> request = ReadFrame(conn);
    if (!request.has_value()) {
      // Clean close, torn connection, or malformed frame: drop the
      // connection, never crash the server. Queued pushes still complete
      // (their plans were received intact); their replies go nowhere.
      break;
    }
    Frame reply;
    reply.request_id = request->request_id;
    reply.iteration = request->iteration;
    reply.replica = request->replica;
    switch (request->type) {
      case FrameType::kPush: {
        if (!push_worker.joinable()) {
          push_worker = std::thread(push_worker_loop);
        }
        std::unique_lock<std::mutex> lock(push_mu);
        if (push_queue.size() >=
            static_cast<size_t>(kMuxPushCredits)) {
          // The client-side credit protocol bounds deferred pushes; a peer
          // that blows past it is misbehaving — drop it rather than buffer
          // unboundedly. Discard its backlog and close the stream *now* so
          // the drop is effective immediately; the worker may still be
          // parked on one in-flight push (released by a fetch or the
          // store's shutdown, like any vanished client's parked push).
          push_queue.clear();
          lock.unlock();
          conn.Close();
          finish();
          return;
        }
        push_queue.push_back(std::move(*request));
        lock.unlock();
        push_cv.notify_one();
        continue;  // reply deferred to the push worker
      }
      case FrameType::kFetch: {
        // Try-fetch, not the fatal FetchBytes: after recovery reposts a
        // dead replica's plan, the zombie's fetch of the moved key must be
        // a kMissing on *its* connection, never an abort in the publisher.
        std::optional<std::string> bytes =
            store_->TryFetchBytes(request->iteration, request->replica);
        if (bytes.has_value()) {
          reply.type = FrameType::kPlanBytes;
          reply.payload = std::move(*bytes);
        } else {
          reply.type = FrameType::kMissing;
        }
        break;
      }
      case FrameType::kContains:
        // A publish-poll is evidence of life: an executor parked waiting for
        // its next plan sends no heartbeats (heartbeats report *completed*
        // iterations), and without this refresh a liveness deadline shorter
        // than the idle window would declare every drained-but-polling
        // survivor dead. Refreshing here scopes the heartbeat deadline to
        // what it is meant to catch: a replica producing no traffic at all.
        store_->NotifyReplicaAttached(request->replica);
        reply.type = FrameType::kBool;
        reply.payload.push_back(
            store_->Contains(request->iteration, request->replica) ? '\1'
                                                                   : '\0');
        break;
      case FrameType::kSize:
        reply.type = FrameType::kCount;
        service::AppendVarint(store_->size(), &reply.payload);
        break;
      case FrameType::kShutdown:
        store_->Shutdown();
        reply.type = FrameType::kOk;
        break;
      case FrameType::kHeartbeat: {
        double wall_ms = 0.0;
        if (!TryParseHeartbeatPayload(request->payload, &wall_ms)) {
          // Malformed payload is a protocol violation like any unparsable
          // frame: drop the connection, never feed garbage to the monitor.
          finish();
          return;
        }
        // One delivery path: the store's heartbeat capability. False (no
        // sink attached) means acknowledged-and-discarded.
        store_->Heartbeat(request->replica, request->iteration, wall_ms);
        // Fencing: a replica declared dead hears it on its next heartbeat —
        // its plans were re-published, so the only safe instruction is
        // "stop" (kEvicted), not an ack that keeps a zombie running.
        reply.type = store_->ReplicaConsideredDead(request->replica)
                         ? FrameType::kEvicted
                         : FrameType::kOk;
        break;
      }
      case FrameType::kAttach: {
        // Frame v3/v4 capability payload: empty (v2) or one bitmask byte.
        // Anything longer is malformed like any unparsable frame.
        if (request->payload.size() > 1) {
          finish();
          return;
        }
        if (!request->payload.empty() &&
            (static_cast<uint8_t>(request->payload[0]) & kAttachCapStats) !=
                0) {
          handler.stats_capable.store(true, std::memory_order_relaxed);
        }
        // kAttachCapJoin needs no handler state: join admission rides the
        // liveness event the NotifyReplicaAttached below fires — the
        // MembershipCoordinator admits any unknown replica that turns
        // alive. The bit is declarative intent (and keeps the executor's
        // command line honest); an old server ignores it harmlessly.
        if (store_->ReplicaConsideredDead(request->replica)) {
          reply.type = FrameType::kEvicted;  // zombie reconnect: refuse
          break;
        }
        store_->NotifyReplicaAttached(request->replica);
        {
          std::lock_guard<std::mutex> attach_lock(handler.attach_mu);
          if (std::find(attached.begin(), attached.end(), request->replica) ==
              attached.end()) {
            attached.push_back(request->replica);
          }
        }
        reply.type = FrameType::kOk;
        break;
      }
      case FrameType::kDrainRequest: {
        // Graceful leave. The liveness event chain (monitor -> recovery ->
        // membership) runs synchronously inside this notify: by the time it
        // returns, the replica is fenced and its unfetched backlog is
        // reposted to the survivors — so the kDrainAck reply really is the
        // green light to finish in-flight work and kDetach. A replica
        // already declared dead gets kEvicted instead: its plans moved long
        // ago and the only safe instruction is "stop".
        if (store_->ReplicaConsideredDead(request->replica)) {
          reply.type = FrameType::kEvicted;
          break;
        }
        store_->NotifyReplicaDrainRequested(request->replica);
        reply.type = FrameType::kDrainAck;
        break;
      }
      case FrameType::kDetach: {
        store_->NotifyReplicaDisconnected(request->replica, /*clean=*/true);
        {
          std::lock_guard<std::mutex> attach_lock(handler.attach_mu);
          attached.erase(
              std::remove(attached.begin(), attached.end(), request->replica),
              attached.end());
        }
        reply.type = FrameType::kOk;
        break;
      }
      case FrameType::kStatsRequest: {
        // Any client may ask for this process's snapshot; the reply also
        // carries our aligned trace clock, which is the server half of the
        // clock-alignment exchange at executor attach.
        reply.type = FrameType::kStatsReply;
        AppendStatsPayload(common::Tracer::Instance().NowUs(),
                           common::MetricsRegistry::Instance().Snapshot(),
                           &reply.payload);
        break;
      }
      case FrameType::kStatsReply: {
        // Answer to a server-initiated pull (CollectRemoteStats). Malformed
        // payloads get the standard treatment: drop the connection, never
        // crash. A well-formed reply whose id matches no pending pull (the
        // collector timed out and forgot it) is simply discarded.
        int64_t remote_now_us = 0;
        common::MetricsSnapshot snapshot;
        if (!TryParseStatsPayload(request->payload, &remote_now_us,
                                  &snapshot)) {
          finish();
          return;
        }
        {
          std::lock_guard<std::mutex> lock(stats_mu_);
          const auto it = pending_stats_.find(request->request_id);
          if (it != pending_stats_.end()) {
            it->second.result.remote_trace_now_us = remote_now_us;
            it->second.result.snapshot = std::move(snapshot);
            it->second.done = true;
          }
        }
        stats_cv_.notify_all();
        continue;  // a reply frame gets no reply
      }
      default:
        // Unknown request type: drop the connection.
        finish();
        return;
    }
    write_reply(reply);
  }
  finish();
}

}  // namespace dynapipe::transport
