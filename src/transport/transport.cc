#include "src/transport/transport.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "src/common/check.h"

namespace dynapipe::transport {
namespace {

// ---------- loopback ----------

// One direction of a loopback stream: an unbounded byte queue. Unbounded is
// deliberate — the frame protocol is request/response, so at most one frame
// is ever in flight per direction.
struct HalfQueue {
  std::mutex mu;
  std::condition_variable cv;
  std::string buf;
  bool closed = false;
};

class LoopbackStream final : public Stream {
 public:
  LoopbackStream(std::shared_ptr<HalfQueue> read_half,
                 std::shared_ptr<HalfQueue> write_half)
      : read_half_(std::move(read_half)), write_half_(std::move(write_half)) {}

  ~LoopbackStream() override { Close(); }

  bool WriteAll(const void* data, size_t n) override {
    std::lock_guard<std::mutex> lock(write_half_->mu);
    if (write_half_->closed) {
      return false;
    }
    write_half_->buf.append(static_cast<const char*>(data), n);
    write_half_->cv.notify_all();
    return true;
  }

  bool ReadAll(void* data, size_t n) override {
    std::unique_lock<std::mutex> lock(read_half_->mu);
    read_half_->cv.wait(
        lock, [&] { return read_half_->buf.size() >= n || read_half_->closed; });
    if (read_half_->buf.size() < n) {
      return false;  // closed before the bytes arrived
    }
    std::memcpy(data, read_half_->buf.data(), n);
    read_half_->buf.erase(0, n);
    return true;
  }

  void Close() override {
    for (HalfQueue* half : {read_half_.get(), write_half_.get()}) {
      {
        std::lock_guard<std::mutex> lock(half->mu);
        half->closed = true;
      }
      half->cv.notify_all();
    }
  }

 private:
  std::shared_ptr<HalfQueue> read_half_;
  std::shared_ptr<HalfQueue> write_half_;
};

// ---------- unix sockets ----------

class FdStream final : public Stream {
 public:
  explicit FdStream(int fd) : fd_(fd) {}

  ~FdStream() override {
    Close();
    ::close(fd_);
  }

  bool WriteAll(const void* data, size_t n) override {
    const char* p = static_cast<const char*>(data);
    while (n > 0) {
      // MSG_NOSIGNAL: a vanished peer must surface as a failed write, not a
      // process-killing SIGPIPE.
      const ssize_t w = ::send(fd_, p, n, MSG_NOSIGNAL);
      if (w < 0) {
        if (errno == EINTR) {
          continue;
        }
        return false;
      }
      p += w;
      n -= static_cast<size_t>(w);
    }
    return true;
  }

  bool ReadAll(void* data, size_t n) override {
    char* p = static_cast<char*>(data);
    while (n > 0) {
      const ssize_t r = ::recv(fd_, p, n, 0);
      if (r < 0 && errno == EINTR) {
        continue;
      }
      if (r <= 0) {
        return false;  // error or EOF mid-read
      }
      p += r;
      n -= static_cast<size_t>(r);
    }
    return true;
  }

  void Close() override { ::shutdown(fd_, SHUT_RDWR); }

 private:
  int fd_;
};

sockaddr_un MakeAddr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  DYNAPIPE_CHECK_MSG(path.size() < sizeof(addr.sun_path),
                     "unix socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

// ---------- LoopbackTransport ----------

std::unique_ptr<Stream> LoopbackTransport::Accept() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return closed_ || !pending_.empty(); });
  if (pending_.empty()) {
    return nullptr;
  }
  std::unique_ptr<Stream> conn = std::move(pending_.front());
  pending_.pop_front();
  return conn;
}

std::unique_ptr<Stream> LoopbackTransport::Connect() {
  auto client_to_server = std::make_shared<HalfQueue>();
  auto server_to_client = std::make_shared<HalfQueue>();
  auto client =
      std::make_unique<LoopbackStream>(server_to_client, client_to_server);
  auto server =
      std::make_unique<LoopbackStream>(client_to_server, server_to_client);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) {
      return nullptr;
    }
    pending_.push_back(std::move(server));
  }
  cv_.notify_one();
  return client;
}

void LoopbackTransport::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    // Streams never accepted are torn down here; their Connect() peers see a
    // closed stream on first use.
    pending_.clear();
  }
  cv_.notify_all();
}

// ---------- UnixSocketTransport ----------

UnixSocketTransport::UnixSocketTransport(std::string path)
    : path_(std::move(path)) {
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  DYNAPIPE_CHECK_MSG(listen_fd_ >= 0, "socket() failed");
  const sockaddr_un addr = MakeAddr(path_);
  ::unlink(path_.c_str());  // a stale socket file from a dead server
  DYNAPIPE_CHECK_MSG(::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
                            sizeof(addr)) == 0,
                     "bind(" + path_ + ") failed: " + std::strerror(errno));
  DYNAPIPE_CHECK_MSG(::listen(listen_fd_, 64) == 0,
                     "listen(" + path_ + ") failed");
}

UnixSocketTransport::~UnixSocketTransport() {
  Close();
  ::close(listen_fd_);
  ::unlink(path_.c_str());
}

std::unique_ptr<Stream> UnixSocketTransport::Accept() {
  // Poll with a short timeout instead of blocking in accept(): Close() from
  // another thread only sets a flag, so the fd is never yanked out from under
  // a blocked syscall.
  while (!closed_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/50);
    if (ready < 0 && errno != EINTR) {
      return nullptr;
    }
    if (ready <= 0) {
      continue;
    }
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd >= 0) {
      return std::make_unique<FdStream>(fd);
    }
    if (errno != EINTR && errno != ECONNABORTED) {
      return nullptr;
    }
  }
  return nullptr;
}

std::unique_ptr<Stream> UnixSocketTransport::Connect() {
  return ConnectUnixSocket(path_);
}

void UnixSocketTransport::Close() {
  closed_.store(true, std::memory_order_release);
}

std::unique_ptr<Stream> ConnectUnixSocket(const std::string& path,
                                          int timeout_ms) {
  const sockaddr_un addr = MakeAddr(path);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      return nullptr;
    }
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) ==
        0) {
      return std::make_unique<FdStream>(fd);
    }
    const int err = errno;
    ::close(fd);
    // ENOENT/ECONNREFUSED: the server has not bound/listened yet.
    const bool server_not_up = err == ENOENT || err == ECONNREFUSED;
    if (!server_not_up || std::chrono::steady_clock::now() >= deadline) {
      return nullptr;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

}  // namespace dynapipe::transport
