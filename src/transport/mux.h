// Persistent multiplexed connection to an InstructionStoreServer.
//
// The one-connection-per-request client (remote_store.h) pays a connect() /
// accept() round trip and a server-side thread spawn for every operation —
// fine for a handful of plans, dominant once plans ship every few
// milliseconds (grid search at scale). MuxInstructionStore keeps ONE
// long-lived stream per executor and multiplexes every request over it:
//
//   - each request carries a fresh request_id (frame.h); a writer mutex
//     serializes frame writes, so requests from any number of threads
//     interleave safely on the single stream;
//   - a dedicated demux thread owns the read side: it matches each reply's
//     request_id to the waiter that sent the request and wakes exactly that
//     caller, so replies may arrive in any order — which they do, because
//     the server defers kPush replies;
//   - blocking-Push semantics survive multiplexing through credits: the
//     server withholds a kPush's kOk while its store is at capacity
//     (store_server.h runs pushes on a per-connection worker so the deferral
//     never stalls the stream), and the client bounds concurrently deferred
//     pushes to kMuxPushCredits — a Push first takes a credit (blocking when
//     none is left) and returns it when its kOk lands. Fetches and the other
//     request types never need a credit, so the fetch that frees a capacity
//     slot always gets through even while every push credit is parked.
//
// A torn or malformed reply stream is a connection error, not a crash: the
// demux loop closes the stream, fails every outstanding waiter, and marks
// the client dead (connection_ok()); subsequent calls are fatal at the call
// site, same as the one-shot client's contract.
#ifndef DYNAPIPE_SRC_TRANSPORT_MUX_H_
#define DYNAPIPE_SRC_TRANSPORT_MUX_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "src/runtime/instruction_store.h"
#include "src/transport/frame.h"
#include "src/transport/transport.h"

namespace dynapipe::transport {

// Maximum kPush replies the server may be holding back per connection. A
// protocol constant both sides agree on: the client never exceeds it, and the
// server drops a connection that does (a misbehaving peer, not backpressure).
inline constexpr int kMuxPushCredits = 16;

// Size of the client's fixed waiter slab — the bound on requests in flight on
// one mux connection. Twice the push credits so that even with every credit
// parked in deferred-kPush backpressure, a full complement of non-push
// requests (fetches, contains polls) still finds a free slot: the fetch that
// frees a capacity slot can never be locked out by the pushes waiting on it.
inline constexpr int kMuxWaiterSlots = 2 * kMuxPushCredits;

class MuxInstructionStore final : public runtime::InstructionStoreInterface {
 public:
  // Takes ownership of a connected stream and starts the demux thread.
  explicit MuxInstructionStore(std::unique_ptr<Stream> stream);
  ~MuxInstructionStore() override;

  MuxInstructionStore(const MuxInstructionStore&) = delete;
  MuxInstructionStore& operator=(const MuxInstructionStore&) = delete;

  // Endpoint conveniences, mirroring RemoteInstructionStore's. Both open the
  // one persistent connection eagerly; the socket overload retries while the
  // server process is still binding.
  static std::shared_ptr<MuxInstructionStore> OverTransport(
      Transport* transport);
  static std::shared_ptr<MuxInstructionStore> OverUnixSocket(
      std::string path, int connect_timeout_ms = 5000);

  void Push(int64_t iteration, int32_t replica,
            sim::ExecutionPlan plan) override;
  sim::ExecutionPlan Fetch(int64_t iteration, int32_t replica) override;
  bool Contains(int64_t iteration, int32_t replica) const override;
  size_t size() const override;
  void Shutdown() override;
  // Encoded bytes this client pushed (the wire volume it produced).
  int64_t serialized_bytes_total() const override;
  // The wire carries heartbeats (kHeartbeat frame), multiplexed like any
  // other request.
  bool supports_heartbeat() const override { return true; }
  bool Heartbeat(int32_t replica, int64_t iteration, double wall_ms) override;

  // False once the stream died or the server sent an unparsable/unmatched
  // reply (the demux loop has exited and failed all waiters).
  bool connection_ok() const;

  // --- Non-fatal surface (the executor's resilience path) ---
  // The InstructionStoreInterface methods above keep the fatal store
  // contract (right for a publisher mid-epoch); a daemon that must survive
  // server teardown and transport faults uses these instead. All of them
  // return false on connection loss — including a blown `timeout_ms` (> 0),
  // which closes the stream and fails the connection: a reply that late
  // means the server is wedged or gone, and leaving the request parked
  // forever would turn teardown into a hang.

  // Contains without the fatal contract: *present is valid only on true.
  // This is the publish-poll riding the persistent stream — no throwaway
  // probe connection per poll.
  bool TryContains(int64_t iteration, int32_t replica, bool* present,
                   int timeout_ms = 0);
  // Fetch distinguishing the three outcomes: a plan (returned), kMissing
  // (nullopt, *connection_lost=false — the key was reclaimed/reposted), and
  // connection loss (nullopt, *connection_lost=true). Corrupt plan bytes
  // stay fatal — a damaged plan must never execute.
  std::optional<sim::ExecutionPlan> TryFetch(int64_t iteration,
                                             int32_t replica,
                                             bool* connection_lost);
  // Heartbeat; *evicted=true when the server answered kEvicted (this
  // replica was declared dead — stop executing).
  bool TryHeartbeat(int32_t replica, int64_t iteration, double wall_ms,
                    bool* evicted);
  // Liveness announcement for `replica` on this connection (kAttach /
  // kDetach). *evicted=true when the server refused the attach because the
  // replica is already declared dead. The attach payload declares the stats
  // capability (frame v3): this connection's demux loop answers
  // server-initiated kStatsRequest frames. `join` additionally sets
  // kAttachCapJoin (frame v4) — declarative intent to join a running fleet;
  // admission itself rides the liveness event the attach fires.
  bool Attach(int32_t replica, bool* evicted, int timeout_ms = 0,
              bool join = false);
  bool Detach(int32_t replica);
  // Graceful-leave handshake (frame v4 kDrainRequest): by the time kDrainAck
  // comes back the server has fenced this replica and reposted its unfetched
  // backlog — finish in-flight work, then Detach. *evicted=true when the
  // server answered kEvicted (this replica was declared dead mid-request).
  // False on connection loss or timeout.
  bool TryDrain(int32_t replica, bool* evicted, int timeout_ms = 0);
  // Client-initiated kStatsRequest: the server's process-wide snapshot plus
  // its aligned trace clock. False on connection loss or a malformed reply
  // (which closes the stream — protocol confusion is connection-grade).
  bool TryStats(int64_t* server_trace_now_us, common::MetricsSnapshot* snapshot,
                int timeout_ms = 0);
  // One kStatsRequest round trip folded into the tracer's clock offset
  // (offset += server_now − midpoint(send, recv)), so spans this process
  // emits land on the server's timeline. Call once after Attach.
  bool TrySyncClock(int timeout_ms = 0);

 private:
  struct Waiter {
    uint64_t request_id = 0;
    std::optional<Frame> reply;
    bool failed = false;
  };

  // One multiplexed exchange: claims a waiter slot (stamping the slot-derived
  // request_id onto `request`), writes the frame, blocks until the demux loop
  // delivers the reply. Fatal on connection failure or an unexpected reply
  // type.
  //
  // The waiter table is a fixed slab instead of a per-request map: slot
  // `request_id % kMuxWaiterSlots` points at the caller's stack Waiter, and
  // request ids are minted per slot (id = slot + kMuxWaiterSlots * generation)
  // so two requests in flight can never collide on a slot — the demux lookup
  // is one index plus an id compare, and the steady-state request path does
  // no heap allocation (no map node; the wire bytes reuse per-thread
  // scratch). When all slots are busy the caller waits for one to free:
  // pushes are bounded below the slab size by their credits, and every other
  // request type is answered inline by the server, so slots always churn.
  Frame Call(Frame& request, FrameType expected_reply) const;
  // The non-fatal core Call is built on: false on connection failure, write
  // failure, or (timeout_ms > 0) no reply in time — the timeout closes the
  // stream, because an abandoned waiter's reply arriving later would desync
  // the slab. On true, *reply holds whatever the server sent; the caller
  // owns type validation.
  bool TryCall(Frame& request, Frame* reply, int timeout_ms = 0) const;
  void DemuxLoop();

  std::unique_ptr<Stream> stream_;
  // Serializes frame writes onto the single stream (any caller thread plus
  // none from the demux side — replies only flow inward).
  mutable std::mutex write_mu_;

  mutable std::mutex mu_;  // waiter slab, credits, failure state
  mutable std::condition_variable cv_;
  // Fixed waiter slab: slots_[i] is the live waiter whose request_id % slots
  // == i, null when free. slot_generation_ mints non-colliding ids.
  mutable std::array<Waiter*, kMuxWaiterSlots> slots_{};
  mutable std::array<uint64_t, kMuxWaiterSlots> slot_generation_{};
  mutable int slot_scan_hint_ = 0;
  mutable int push_credits_ = kMuxPushCredits;
  bool connection_failed_ = false;
  std::string connection_error_;

  std::atomic<int64_t> serialized_bytes_total_{0};
  std::thread demux_thread_;
};

}  // namespace dynapipe::transport

#endif  // DYNAPIPE_SRC_TRANSPORT_MUX_H_
