// Client side of cross-process plan distribution.
//
// RemoteInstructionStore implements InstructionStoreInterface by speaking the
// frame protocol to an InstructionStoreServer, so PlanAheadService (and
// anything else written against the interface) works across a process
// boundary without code changes. Semantics match the in-process store:
//   - Push encodes the plan (plan_serde) and blocks until the server's kOk —
//     which the server withholds while its store is at capacity, so the
//     paper's bounded-working-set backpressure crosses the wire;
//   - Fetch decodes the returned bytes with the non-fatal decoder and treats
//     malformed payloads as a fatal transport error (a corrupted plan must
//     never reach an executor);
//   - publish-before-fetch violations abort on the server (same fatal
//     contract, one process over).
//
// One connection per request: requests from different threads never share a
// stream, so a Push parked in backpressure cannot wedge a concurrent Fetch —
// the fetch that frees the slot always gets through.
#ifndef DYNAPIPE_SRC_TRANSPORT_REMOTE_STORE_H_
#define DYNAPIPE_SRC_TRANSPORT_REMOTE_STORE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "src/runtime/instruction_store.h"
#include "src/transport/frame.h"
#include "src/transport/transport.h"

namespace dynapipe::transport {

class RemoteInstructionStore final : public runtime::InstructionStoreInterface {
 public:
  // Opens a fresh connection per request. Must return a connected stream;
  // returning null is a fatal error at the call site (the store is gone).
  using Connector = std::function<std::unique_ptr<Stream>()>;

  explicit RemoteInstructionStore(Connector connect);

  // Endpoint conveniences. The transport overload serves in-process tests
  // (loopback or a socket transport object); the path overload is what an
  // executor process uses — it retries while the planner process is still
  // binding the socket.
  static std::shared_ptr<RemoteInstructionStore> OverTransport(
      Transport* transport);
  static std::shared_ptr<RemoteInstructionStore> OverUnixSocket(
      std::string path, int connect_timeout_ms = 5000);

  void Push(int64_t iteration, int32_t replica,
            sim::ExecutionPlan plan) override;
  sim::ExecutionPlan Fetch(int64_t iteration, int32_t replica) override;
  bool Contains(int64_t iteration, int32_t replica) const override;
  size_t size() const override;
  void Shutdown() override;
  // Encoded bytes this client pushed (the wire volume it produced). Dropped
  // pushes (server already shut down) are counted: the bytes crossed the wire.
  int64_t serialized_bytes_total() const override;
  // The wire carries heartbeats (kHeartbeat frame): iteration completion
  // reports reach the server's HeartbeatSink for straggler detection.
  bool supports_heartbeat() const override { return true; }
  bool Heartbeat(int32_t replica, int64_t iteration, double wall_ms) override;

  // --- Non-fatal surface (the executor's resilience path; see mux.h) ---
  // Fetch tolerating kMissing (nullopt, *connection_lost=false — the key
  // was reclaimed by recovery) and connection loss (*connection_lost=true).
  // Corrupt plan bytes stay fatal.
  std::optional<sim::ExecutionPlan> TryFetch(int64_t iteration,
                                             int32_t replica,
                                             bool* connection_lost);
  // Heartbeat returning false on connection loss; *evicted=true when the
  // server answered kEvicted (this replica was declared dead).
  bool TryHeartbeat(int32_t replica, int64_t iteration, double wall_ms,
                    bool* evicted);

 private:
  // One request/response exchange; fatal on connection or protocol failure.
  Frame Call(const Frame& request, FrameType expected_reply) const;
  // Same exchange, nullopt on connect/write/read failure. The reply type is
  // the caller's to validate.
  std::optional<Frame> TryCall(const Frame& request) const;

  Connector connect_;
  std::atomic<int64_t> serialized_bytes_total_{0};
};

}  // namespace dynapipe::transport

#endif  // DYNAPIPE_SRC_TRANSPORT_REMOTE_STORE_H_
