// Byte transports for cross-process plan distribution.
//
// The paper moves serialized instruction streams between processes through a
// Redis store (§3); our stand-in is a client/server pair (store_server.h,
// remote_store.h) speaking a length-prefixed frame protocol (frame.h) over
// the duplex byte streams defined here. Two implementations:
//   - UnixSocketTransport: a real process boundary — SOCK_STREAM Unix domain
//     sockets, which is what the fork-based planner/executor example and the
//     multi-process path use;
//   - LoopbackTransport: an in-memory pipe pair with identical blocking
//     semantics and no file descriptors, for deterministic single-process
//     tests (and TSan runs, where every byte handoff is a checked
//     synchronization edge).
// A Transport is one server endpoint: Accept() yields inbound connections,
// Connect() opens outbound ones. Cross-process clients that cannot share the
// Transport object connect by address instead (ConnectUnixSocket).
#ifndef DYNAPIPE_SRC_TRANSPORT_TRANSPORT_H_
#define DYNAPIPE_SRC_TRANSPORT_TRANSPORT_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <string>

namespace dynapipe::transport {

// A duplex byte stream. Reads and writes are blocking; thread-safe as one
// reader plus one writer (the frame protocol is strictly request/response, so
// each connection has at most one of each).
class Stream {
 public:
  virtual ~Stream() = default;

  // Writes all n bytes; false when the peer is gone.
  virtual bool WriteAll(const void* data, size_t n) = 0;
  // Reads exactly n bytes; false if the stream closes before they arrive.
  virtual bool ReadAll(void* data, size_t n) = 0;
  // Closes both directions, unblocking a peer parked in ReadAll. Destructors
  // call this implicitly.
  virtual void Close() = 0;
};

// One server endpoint.
class Transport {
 public:
  virtual ~Transport() = default;

  // Blocks for the next inbound connection; null once Close() was called.
  virtual std::unique_ptr<Stream> Accept() = 0;
  // Opens a fresh connection to this endpoint. Thread-safe; null on failure.
  virtual std::unique_ptr<Stream> Connect() = 0;
  // Stops accepting: pending and future Accept calls return null. Connections
  // already handed out are unaffected.
  virtual void Close() = 0;
};

// In-memory transport: Connect() enqueues the server half of a fresh stream
// pair for Accept(). Deterministic and fd-free.
class LoopbackTransport final : public Transport {
 public:
  std::unique_ptr<Stream> Accept() override;
  std::unique_ptr<Stream> Connect() override;
  void Close() override;

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool closed_ = false;
  std::deque<std::unique_ptr<Stream>> pending_;
};

// Unix domain socket transport. The constructor binds and listens on `path`
// (unlinking a stale socket file first); failure to bind is fatal. Close()
// only flags the accept loop — destroy the transport (which closes the fd and
// unlinks the path) after any in-flight Accept has returned.
class UnixSocketTransport final : public Transport {
 public:
  explicit UnixSocketTransport(std::string path);
  ~UnixSocketTransport() override;

  std::unique_ptr<Stream> Accept() override;
  std::unique_ptr<Stream> Connect() override;
  void Close() override;

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  int listen_fd_ = -1;
  std::atomic<bool> closed_{false};
};

// Connects to a listening Unix domain socket. A server that has not bound yet
// is retried (10ms backoff) until timeout_ms elapses — the executor process
// typically races the planner's startup. Null on failure/timeout.
std::unique_ptr<Stream> ConnectUnixSocket(const std::string& path,
                                          int timeout_ms = 0);

}  // namespace dynapipe::transport

#endif  // DYNAPIPE_SRC_TRANSPORT_TRANSPORT_H_
