// Ahead-of-time communication planning (§6).
//
// Given a pipeline schedule and its simulated compute timeline, compile per-device
// instruction sequences in which every send *and its matching receive* are scheduled
// together at the moment the tensor is produced (ordered by compute-op end time,
// with a deterministic tie-break shared by all devices). Because every device
// derives its per-pair communication order from the same global trigger order, the
// orders agree pairwise and the plan is deadlock-free by construction. Wait ops are
// placed as late as possible — immediately before the computation that consumes the
// tensor — maximizing the window in which communication overlaps compute (Fig. 12).
//
// PlanCommunicationNaive implements the baseline the paper shows deadlocking:
// send posted right after production, receive right before use. Under uniform 1F1B
// its crossing send/recv pairs are fused (batched issue) like Megatron-LM does;
// under dynamic schedules fusion is not possible (§2.3) and the naive order
// deadlocks on NCCL-like channels.
#ifndef DYNAPIPE_SRC_COMM_COMM_PLANNER_H_
#define DYNAPIPE_SRC_COMM_COMM_PLANNER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/model/shapes.h"
#include "src/schedule/executor_simulator.h"
#include "src/schedule/schedule_types.h"
#include "src/sim/instruction.h"

namespace dynapipe::comm {

struct CommPlannerInputs {
  const schedule::PipelineSchedule* schedule = nullptr;
  // Timeline of *predicted* op times for the schedule (SimulateSchedule output);
  // used only to order communication, so prediction error cannot break correctness.
  const schedule::SimulatedTimeline* timeline = nullptr;
  // Padded shape per micro-batch (embedded into compute instructions).
  std::vector<model::MicroBatchShape> shapes;
  // Bytes of the activation stage s sends to stage s+1 for micro-batch mb
  // (gradients flow back with the same volume).
  std::function<int64_t(int32_t stage, int32_t mb)> boundary_bytes;
  model::RecomputeMode recompute = model::RecomputeMode::kNone;
};

// Deadlock-free plan: sends and receives co-scheduled at tensor production time.
sim::ExecutionPlan PlanCommunication(const CommPlannerInputs& inputs);

struct NaivePlanOptions {
  // Fuse adjacent send/recv Start pairs to the same peer (what Megatron-LM's 1F1B
  // does). Leave false to model a strictly sequential naive executor.
  bool fuse_adjacent_pairs = true;
};

// Deadlock-prone baseline: send after production, receive just before use.
sim::ExecutionPlan PlanCommunicationNaive(const CommPlannerInputs& inputs,
                                          const NaivePlanOptions& options = {});

}  // namespace dynapipe::comm

#endif  // DYNAPIPE_SRC_COMM_COMM_PLANNER_H_
