// Static plan validation.
//
// VerifyWellFormed checks structural invariants every executable plan must satisfy
// (each Wait preceded by its Start, each consuming compute op preceded by the
// matching receive-Wait, one forward and one backward per micro-batch per device).
//
// VerifyChannelOrderConsistency replays each device pair's posted communication ops
// through the untimed NCCL matching discipline (head-group conjugate matching, the
// same rule sim::Channel enforces) and reports any pair whose orders cannot fully
// drain — i.e., plans that would deadlock at runtime. The DynaPipe communication
// planner's output always passes; the naive plan of a dynamic schedule generally
// does not.
#ifndef DYNAPIPE_SRC_COMM_VERIFY_H_
#define DYNAPIPE_SRC_COMM_VERIFY_H_

#include <string>
#include <vector>

#include "src/sim/instruction.h"

namespace dynapipe::comm {

std::vector<std::string> VerifyWellFormed(const sim::ExecutionPlan& plan);

std::vector<std::string> VerifyChannelOrderConsistency(const sim::ExecutionPlan& plan);

}  // namespace dynapipe::comm

#endif  // DYNAPIPE_SRC_COMM_VERIFY_H_
