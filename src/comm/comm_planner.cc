#include "src/comm/comm_planner.h"

#include <algorithm>
#include <tuple>

#include "src/common/check.h"

namespace dynapipe::comm {
namespace {

using schedule::PipelineSchedule;
using schedule::ScheduledOp;
using sim::ExecutionPlan;
using sim::Instruction;
using sim::InstrType;

void ValidateInputs(const CommPlannerInputs& in) {
  DYNAPIPE_CHECK(in.schedule != nullptr);
  DYNAPIPE_CHECK(in.boundary_bytes != nullptr);
  DYNAPIPE_CHECK(in.shapes.size() ==
                 static_cast<size_t>(in.schedule->num_microbatches));
}

Instruction ComputeInstr(const CommPlannerInputs& in, const ScheduledOp& op) {
  Instruction instr;
  instr.type = op.is_backward ? InstrType::kBackwardPass : InstrType::kForwardPass;
  instr.microbatch = op.microbatch;
  instr.shape = in.shapes[static_cast<size_t>(op.microbatch)];
  instr.recompute = in.recompute;
  return instr;
}

Instruction CommInstr(InstrType type, int32_t mb, int32_t peer, int64_t bytes) {
  Instruction instr;
  instr.type = type;
  instr.microbatch = mb;
  instr.peer = peer;
  instr.bytes = bytes;
  return instr;
}

// Insert the late Wait ops: immediately before every consuming compute op.
void InsertWaits(const CommPlannerInputs& in, ExecutionPlan& plan) {
  const int32_t c = in.schedule->num_stages();
  for (int32_t j = 0; j < c; ++j) {
    auto& instrs = plan.devices[static_cast<size_t>(j)].instructions;
    std::vector<Instruction> out;
    out.reserve(instrs.size() * 2);
    for (const auto& instr : instrs) {
      if (instr.type == InstrType::kForwardPass && j > 0) {
        out.push_back(CommInstr(InstrType::kWaitRecvAct, instr.microbatch, j - 1,
                                in.boundary_bytes(j - 1, instr.microbatch)));
      } else if (instr.type == InstrType::kBackwardPass && j < c - 1) {
        out.push_back(CommInstr(InstrType::kWaitRecvGrad, instr.microbatch, j + 1,
                                in.boundary_bytes(j, instr.microbatch)));
      }
      out.push_back(instr);
    }
    instrs = std::move(out);
  }
}

}  // namespace

ExecutionPlan PlanCommunication(const CommPlannerInputs& in) {
  ValidateInputs(in);
  DYNAPIPE_CHECK(in.timeline != nullptr);
  const PipelineSchedule& sched = *in.schedule;
  const schedule::SimulatedTimeline& tl = *in.timeline;
  const int32_t c = sched.num_stages();

  ExecutionPlan plan;
  plan.num_microbatches = sched.num_microbatches;
  plan.devices.resize(static_cast<size_t>(c));

  // Merge keys: (time, kind, seq) — compute ops at their own end time with kind 0
  // (a sender posts right after producing), Start ops at their trigger's end time
  // with kind 1 and a *globally shared* sequence so every device orders shared
  // triggers identically.
  struct Item {
    double time;
    int32_t kind;
    int64_t seq;
    Instruction instr;
  };
  std::vector<std::vector<Item>> streams(static_cast<size_t>(c));

  // Compute ops, in schedule order (their end times are non-decreasing per device).
  for (int32_t j = 0; j < c; ++j) {
    const size_t sj = static_cast<size_t>(j);
    int64_t seq = 0;
    for (const auto& op : sched.devices[sj]) {
      const auto& times = op.is_backward
                              ? tl.bwd[sj][static_cast<size_t>(op.microbatch)]
                              : tl.fwd[sj][static_cast<size_t>(op.microbatch)];
      streams[sj].push_back(Item{times.end_ms, 0, seq++, ComputeInstr(in, op)});
    }
  }

  // Triggers: every tensor-producing compute op, ascending by (end time, stage, mb,
  // direction) — the deterministic global order all devices share.
  struct Trigger {
    double end_ms;
    int32_t stage;
    int32_t mb;
    bool backward;
  };
  std::vector<Trigger> triggers;
  for (int32_t j = 0; j < c; ++j) {
    const size_t sj = static_cast<size_t>(j);
    for (int32_t i = 0; i < sched.num_microbatches; ++i) {
      const size_t si = static_cast<size_t>(i);
      if (j < c - 1) {
        triggers.push_back(Trigger{tl.fwd[sj][si].end_ms, j, i, false});
      }
      if (j > 0) {
        triggers.push_back(Trigger{tl.bwd[sj][si].end_ms, j, i, true});
      }
    }
  }
  std::sort(triggers.begin(), triggers.end(), [](const Trigger& a, const Trigger& b) {
    return std::tie(a.end_ms, a.stage, a.mb, a.backward) <
           std::tie(b.end_ms, b.stage, b.mb, b.backward);
  });

  int64_t global_seq = 0;
  for (const auto& t : triggers) {
    ++global_seq;
    if (!t.backward) {
      // Activation produced on stage t.stage flows to t.stage + 1.
      const int64_t bytes = in.boundary_bytes(t.stage, t.mb);
      streams[static_cast<size_t>(t.stage)].push_back(
          Item{t.end_ms, 1, global_seq,
               CommInstr(InstrType::kSendActStart, t.mb, t.stage + 1, bytes)});
      streams[static_cast<size_t>(t.stage) + 1].push_back(
          Item{t.end_ms, 1, global_seq,
               CommInstr(InstrType::kRecvActStart, t.mb, t.stage, bytes)});
    } else {
      // Gradient produced on stage t.stage flows to t.stage - 1; its volume equals
      // the activation that crossed that boundary forward.
      const int64_t bytes = in.boundary_bytes(t.stage - 1, t.mb);
      streams[static_cast<size_t>(t.stage)].push_back(
          Item{t.end_ms, 1, global_seq,
               CommInstr(InstrType::kSendGradStart, t.mb, t.stage - 1, bytes)});
      streams[static_cast<size_t>(t.stage) - 1].push_back(
          Item{t.end_ms, 1, global_seq,
               CommInstr(InstrType::kRecvGradStart, t.mb, t.stage, bytes)});
    }
  }

  for (int32_t j = 0; j < c; ++j) {
    auto& stream = streams[static_cast<size_t>(j)];
    std::stable_sort(stream.begin(), stream.end(), [](const Item& a, const Item& b) {
      return std::tie(a.time, a.kind, a.seq) < std::tie(b.time, b.kind, b.seq);
    });
    auto& instrs = plan.devices[static_cast<size_t>(j)].instructions;
    plan.devices[static_cast<size_t>(j)].device = j;
    instrs.reserve(stream.size());
    for (auto& item : stream) {
      instrs.push_back(item.instr);
    }
  }

  InsertWaits(in, plan);
  return plan;
}

ExecutionPlan PlanCommunicationNaive(const CommPlannerInputs& in,
                                     const NaivePlanOptions& options) {
  ValidateInputs(in);
  const PipelineSchedule& sched = *in.schedule;
  const int32_t c = sched.num_stages();

  ExecutionPlan plan;
  plan.num_microbatches = sched.num_microbatches;
  plan.devices.resize(static_cast<size_t>(c));

  for (int32_t j = 0; j < c; ++j) {
    auto& dev = plan.devices[static_cast<size_t>(j)];
    dev.device = j;
    for (const auto& op : sched.devices[static_cast<size_t>(j)]) {
      const int32_t i = op.microbatch;
      if (!op.is_backward) {
        if (j > 0) {  // receive just before use
          const int64_t bytes = in.boundary_bytes(j - 1, i);
          dev.instructions.push_back(
              CommInstr(InstrType::kRecvActStart, i, j - 1, bytes));
          dev.instructions.push_back(
              CommInstr(InstrType::kWaitRecvAct, i, j - 1, bytes));
        }
        dev.instructions.push_back(ComputeInstr(in, op));
        if (j < c - 1) {  // send right after production
          dev.instructions.push_back(CommInstr(InstrType::kSendActStart, i, j + 1,
                                               in.boundary_bytes(j, i)));
        }
      } else {
        if (j < c - 1) {
          const int64_t bytes = in.boundary_bytes(j, i);
          dev.instructions.push_back(
              CommInstr(InstrType::kRecvGradStart, i, j + 1, bytes));
          dev.instructions.push_back(
              CommInstr(InstrType::kWaitRecvGrad, i, j + 1, bytes));
        }
        dev.instructions.push_back(ComputeInstr(in, op));
        if (j > 0) {
          dev.instructions.push_back(CommInstr(InstrType::kSendGradStart, i, j - 1,
                                               in.boundary_bytes(j - 1, i)));
        }
      }
    }
  }

  if (options.fuse_adjacent_pairs) {
    // Fuse adjacent send/recv *pairs* to the same peer — exactly the fixed fused
    // primitives (send_forward_recv_backward and friends) Megatron-LM's 1F1B uses
    // for its crossing arrows (Fig. 8a). Dynamic schedules produce patterns these
    // fixed primitives do not cover (extra sends interleave, §2.3), which is why
    // the naive plan of an adaptive schedule still deadlocks.
    int32_t next_group = 0;
    for (auto& dev : plan.devices) {
      auto& instrs = dev.instructions;
      for (size_t k = 0; k + 1 < instrs.size(); ++k) {
        if (!sim::IsCommStart(instrs[k].type) ||
            !sim::IsCommStart(instrs[k + 1].type) ||
            instrs[k].peer != instrs[k + 1].peer ||
            instrs[k].fusion_group >= 0 ||
            sim::IsSend(instrs[k].type) == sim::IsSend(instrs[k + 1].type)) {
          continue;
        }
        instrs[k].fusion_group = next_group;
        instrs[k + 1].fusion_group = next_group;
        ++next_group;
        ++k;  // do not chain the second op into another pair
      }
    }
  }
  return plan;
}

}  // namespace dynapipe::comm
