#include "src/comm/verify.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "src/common/check.h"

namespace dynapipe::comm {
namespace {

using sim::ExecutionPlan;
using sim::Instruction;
using sim::InstrType;

uint64_t TagFor(const Instruction& instr) {
  const bool is_grad = instr.type == InstrType::kSendGradStart ||
                       instr.type == InstrType::kRecvGradStart;
  return (static_cast<uint64_t>(instr.microbatch) << 1) | (is_grad ? 1u : 0u);
}

struct StaticOp {
  bool is_send = false;
  uint64_t tag = 0;
  bool matched = false;
};

// Groups as posted by a device toward one peer (respecting fusion).
std::vector<std::vector<StaticOp>> PostedGroups(const std::vector<Instruction>& instrs,
                                                int32_t peer) {
  std::vector<std::vector<StaticOp>> groups;
  size_t k = 0;
  while (k < instrs.size()) {
    const Instruction& in = instrs[k];
    if (!sim::IsCommStart(in.type) || in.peer != peer) {
      ++k;
      continue;
    }
    std::vector<StaticOp> group;
    group.push_back(StaticOp{sim::IsSend(in.type), TagFor(in), false});
    size_t next = k + 1;
    while (next < instrs.size() && sim::IsCommStart(instrs[next].type) &&
           instrs[next].peer == peer && in.fusion_group >= 0 &&
           instrs[next].fusion_group == in.fusion_group) {
      group.push_back(
          StaticOp{sim::IsSend(instrs[next].type), TagFor(instrs[next]), false});
      ++next;
    }
    groups.push_back(std::move(group));
    k = next;
  }
  return groups;
}

// Untimed replay of the Channel head-group matching rule. Returns true if both
// sides drain completely.
bool Drains(std::vector<std::vector<StaticOp>> a, std::vector<std::vector<StaticOp>> b,
            std::string* stuck_detail) {
  size_t ha = 0;
  size_t hb = 0;
  while (ha < a.size() && hb < b.size()) {
    bool matched_any = false;
    for (auto& opa : a[ha]) {
      if (opa.matched) {
        continue;
      }
      for (auto& opb : b[hb]) {
        if (opb.matched || opa.is_send == opb.is_send || opa.tag != opb.tag) {
          continue;
        }
        opa.matched = true;
        opb.matched = true;
        matched_any = true;
        break;
      }
    }
    auto all = [](const std::vector<StaticOp>& g) {
      return std::all_of(g.begin(), g.end(),
                         [](const StaticOp& o) { return o.matched; });
    };
    bool popped = false;
    if (all(a[ha])) {
      ++ha;
      popped = true;
    }
    if (hb < b.size() && all(b[hb])) {
      ++hb;
      popped = true;
    }
    if (!matched_any && !popped) {
      if (stuck_detail != nullptr) {
        std::ostringstream oss;
        oss << "stuck at group " << ha << " vs group " << hb;
        *stuck_detail = oss.str();
      }
      return false;
    }
  }
  if (ha < a.size() || hb < b.size()) {
    if (stuck_detail != nullptr) {
      *stuck_detail = "unmatched trailing groups";
    }
    return false;
  }
  return true;
}

}  // namespace

std::vector<std::string> VerifyWellFormed(const ExecutionPlan& plan) {
  std::vector<std::string> violations;
  const int32_t c = plan.num_devices();
  for (int32_t j = 0; j < c; ++j) {
    const auto& instrs = plan.devices[static_cast<size_t>(j)].instructions;
    std::set<std::tuple<InstrType, int32_t, int32_t>> started;
    std::map<int32_t, int> fwd_count;
    std::map<int32_t, int> bwd_count;
    std::set<int32_t> act_waited;
    std::set<int32_t> grad_waited;
    for (const auto& in : instrs) {
      if (sim::IsCommStart(in.type)) {
        started.insert({in.type, in.microbatch, in.peer});
      } else if (sim::IsCommWait(in.type)) {
        InstrType start_type;
        switch (in.type) {
          case InstrType::kWaitSendAct:
            start_type = InstrType::kSendActStart;
            break;
          case InstrType::kWaitRecvAct:
            start_type = InstrType::kRecvActStart;
            break;
          case InstrType::kWaitSendGrad:
            start_type = InstrType::kSendGradStart;
            break;
          default:
            start_type = InstrType::kRecvGradStart;
            break;
        }
        if (started.find({start_type, in.microbatch, in.peer}) == started.end()) {
          violations.push_back("device " + std::to_string(j) + ": " + in.ToString() +
                               " has no preceding Start");
        }
        if (in.type == InstrType::kWaitRecvAct) {
          act_waited.insert(in.microbatch);
        } else if (in.type == InstrType::kWaitRecvGrad) {
          grad_waited.insert(in.microbatch);
        }
      } else if (in.type == InstrType::kForwardPass) {
        ++fwd_count[in.microbatch];
        if (j > 0 && act_waited.find(in.microbatch) == act_waited.end()) {
          violations.push_back("device " + std::to_string(j) + ": fwd of mb " +
                               std::to_string(in.microbatch) +
                               " not preceded by WaitRecvAct");
        }
      } else if (in.type == InstrType::kBackwardPass) {
        ++bwd_count[in.microbatch];
        if (j < c - 1 && grad_waited.find(in.microbatch) == grad_waited.end()) {
          violations.push_back("device " + std::to_string(j) + ": bwd of mb " +
                               std::to_string(in.microbatch) +
                               " not preceded by WaitRecvGrad");
        }
      }
    }
    for (int32_t i = 0; i < plan.num_microbatches; ++i) {
      if (fwd_count[i] != 1 || bwd_count[i] != 1) {
        violations.push_back("device " + std::to_string(j) + ": mb " +
                             std::to_string(i) + " has " +
                             std::to_string(fwd_count[i]) + " fwd / " +
                             std::to_string(bwd_count[i]) + " bwd passes");
      }
    }
  }
  return violations;
}

std::vector<std::string> VerifyChannelOrderConsistency(const ExecutionPlan& plan) {
  std::vector<std::string> violations;
  const int32_t c = plan.num_devices();
  for (int32_t a = 0; a < c; ++a) {
    for (int32_t b = a + 1; b < c; ++b) {
      const auto ga =
          PostedGroups(plan.devices[static_cast<size_t>(a)].instructions, b);
      const auto gb =
          PostedGroups(plan.devices[static_cast<size_t>(b)].instructions, a);
      if (ga.empty() && gb.empty()) {
        continue;
      }
      std::string detail;
      if (!Drains(ga, gb, &detail)) {
        violations.push_back("pair (" + std::to_string(a) + "," + std::to_string(b) +
                             "): " + detail);
      }
    }
  }
  return violations;
}

}  // namespace dynapipe::comm
