// Planning-side timeline simulation of a pipeline schedule.
//
// Given a PipelineSchedule and per-op costs, computes when every forward/backward
// would start and end if devices execute their op orders respecting cross-stage
// dependencies (fwd i on stage j needs fwd i on stage j-1; bwd i on stage j needs
// bwd i on stage j+1, and on the last stage its own fwd). This is the simulation the
// paper uses to (a) study schedule robustness (Fig. 7), (b) evaluate micro-batch
// injection orders, and (c) lay out the communication timeline (Fig. 12). It
// deliberately ignores channel-ordering effects — that is ClusterSim's job — and
// models communication as a per-boundary delay.
#ifndef DYNAPIPE_SRC_SCHEDULE_EXECUTOR_SIMULATOR_H_
#define DYNAPIPE_SRC_SCHEDULE_EXECUTOR_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/schedule/schedule_types.h"

namespace dynapipe::schedule {

struct OpTimes {
  double ready_ms = 0.0;  // all dependencies satisfied
  double start_ms = 0.0;
  double end_ms = 0.0;

  // How long the op sat ready before its device picked it up — the observable
  // counterpart of a positive safety stock.
  double slack_ms() const { return start_ms - ready_ms; }
};

struct SimulatedTimeline {
  // Indexed [stage][microbatch].
  std::vector<std::vector<OpTimes>> fwd;
  std::vector<std::vector<OpTimes>> bwd;
  double makespan_ms = 0.0;
  std::vector<double> device_busy_ms;
  std::vector<double> device_peak_mb;  // timed activation high-water mark

  // Mean fraction of the makespan devices spend idle (pipeline bubble).
  double MeanBubbleFraction() const;
};

struct ExecutorSimOptions {
  // Delay between producing stage `from` and consuming stage `to` for micro-batch
  // `mb` (activation if !backward, gradient otherwise). Null means zero delay.
  std::function<double(int32_t from_stage, int32_t to_stage, int32_t mb,
                       bool backward)>
      comm_delay_ms;
};

// Aborts (DYNAPIPE_CHECK) if the schedule is inconsistent (op counts wrong or
// execution cannot make progress, which cannot happen for schedules produced by the
// schedulers in this library).
SimulatedTimeline SimulateSchedule(const PipelineSchedule& schedule,
                                   const OpCosts& costs,
                                   const ExecutorSimOptions& options = {});

}  // namespace dynapipe::schedule

#endif  // DYNAPIPE_SRC_SCHEDULE_EXECUTOR_SIMULATOR_H_
