// Pipeline schedule representation shared by the schedulers, the planning-side
// executor simulator, and the communication planner.
//
// A PipelineSchedule fixes, for every device (stage), the order in which it runs the
// forward and backward passes of the iteration's micro-batches. Times are *not* part
// of the schedule — they emerge from execution (simulated or real); the schedule only
// pins relative order per device.
#ifndef DYNAPIPE_SRC_SCHEDULE_SCHEDULE_TYPES_H_
#define DYNAPIPE_SRC_SCHEDULE_SCHEDULE_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/check.h"

namespace dynapipe::schedule {

struct ScheduledOp {
  int32_t microbatch = 0;
  bool is_backward = false;

  bool operator==(const ScheduledOp&) const = default;
};

struct PipelineSchedule {
  // devices[j] is the op order for pipeline stage j.
  std::vector<std::vector<ScheduledOp>> devices;
  int32_t num_microbatches = 0;

  int32_t num_stages() const { return static_cast<int32_t>(devices.size()); }
  std::string ToString() const;
};

// Per-op planning inputs, indexed [stage][microbatch].
struct OpCosts {
  std::vector<std::vector<double>> fwd_ms;
  std::vector<std::vector<double>> bwd_ms;
  std::vector<std::vector<double>> act_mb;  // activation held from fwd until bwd

  int32_t num_stages() const { return static_cast<int32_t>(fwd_ms.size()); }
  int32_t num_microbatches() const {
    return fwd_ms.empty() ? 0 : static_cast<int32_t>(fwd_ms.front().size());
  }
  void Validate() const;

  // Uniform-cost helper (every micro-batch identical), used by tests and Fig. 7.
  static OpCosts Uniform(int32_t num_stages, int32_t num_microbatches, double fwd_ms,
                         double bwd_ms, double act_mb);
};

}  // namespace dynapipe::schedule

#endif  // DYNAPIPE_SRC_SCHEDULE_SCHEDULE_TYPES_H_
