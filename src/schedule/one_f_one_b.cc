#include "src/schedule/one_f_one_b.h"

#include <algorithm>

#include "src/common/check.h"

namespace dynapipe::schedule {

PipelineSchedule OneFOneBSchedule(int32_t num_microbatches, int32_t num_stages) {
  DYNAPIPE_CHECK(num_microbatches >= 1);
  DYNAPIPE_CHECK(num_stages >= 1);
  PipelineSchedule sched;
  sched.num_microbatches = num_microbatches;
  sched.devices.resize(static_cast<size_t>(num_stages));
  for (int32_t j = 0; j < num_stages; ++j) {
    auto& order = sched.devices[static_cast<size_t>(j)];
    const int32_t warmup = std::min(num_microbatches, num_stages - 1 - j);
    int32_t next_fwd = 0;
    int32_t next_bwd = 0;
    for (int32_t i = 0; i < warmup; ++i) {
      order.push_back({next_fwd++, false});
    }
    while (next_fwd < num_microbatches) {
      order.push_back({next_fwd++, false});
      order.push_back({next_bwd++, true});
    }
    while (next_bwd < num_microbatches) {
      order.push_back({next_bwd++, true});
    }
  }
  return sched;
}

}  // namespace dynapipe::schedule
