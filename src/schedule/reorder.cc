#include "src/schedule/reorder.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "src/common/check.h"

namespace dynapipe::schedule {

std::vector<int32_t> ClusterByTime(const std::vector<double>& values,
                                   int32_t num_clusters) {
  DYNAPIPE_CHECK(num_clusters >= 1);
  const size_t n = values.size();
  const size_t k =
      std::min<size_t>(static_cast<size_t>(num_clusters), std::max<size_t>(n, 1));
  std::vector<int32_t> assign(n, 0);
  if (n == 0 || k <= 1) {
    return assign;
  }

  // Quantile initialization over the sorted values.
  std::vector<double> sorted(values);
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> centers(k);
  for (size_t c = 0; c < k; ++c) {
    const size_t idx = (2 * c + 1) * (n - 1) / (2 * k);
    centers[c] = sorted[idx];
  }

  for (int iter = 0; iter < 32; ++iter) {
    bool changed = false;
    for (size_t i = 0; i < n; ++i) {
      size_t best = 0;
      double best_d = std::abs(values[i] - centers[0]);
      for (size_t c = 1; c < k; ++c) {
        const double d = std::abs(values[i] - centers[c]);
        if (d < best_d) {
          best = c;
          best_d = d;
        }
      }
      if (assign[i] != static_cast<int32_t>(best)) {
        assign[i] = static_cast<int32_t>(best);
        changed = true;
      }
    }
    std::vector<double> sums(k, 0.0);
    std::vector<int64_t> counts(k, 0);
    for (size_t i = 0; i < n; ++i) {
      sums[static_cast<size_t>(assign[i])] += values[i];
      ++counts[static_cast<size_t>(assign[i])];
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] > 0) {
        centers[c] = sums[c] / static_cast<double>(counts[c]);
      }
    }
    if (!changed) {
      break;
    }
  }

  // Relabel clusters so index order follows center order (deterministic output).
  std::vector<size_t> order(k);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return centers[a] < centers[b]; });
  std::vector<int32_t> relabel(k);
  for (size_t rank = 0; rank < k; ++rank) {
    relabel[order[rank]] = static_cast<int32_t>(rank);
  }
  for (auto& a : assign) {
    a = relabel[static_cast<size_t>(a)];
  }
  return assign;
}

ReorderResult ReorderMicroBatches(const OpCosts& costs,
                                  const std::vector<double>& microbatch_time_ms,
                                  const ReorderOptions& options) {
  costs.Validate();
  const int32_t m = costs.num_microbatches();
  DYNAPIPE_CHECK(microbatch_time_ms.size() == static_cast<size_t>(m));

  const std::vector<int32_t> cluster =
      ClusterByTime(microbatch_time_ms, options.num_clusters);
  const int32_t k = cluster.empty()
                        ? 1
                        : 1 + *std::max_element(cluster.begin(), cluster.end());

  // Members per cluster in original (DP output) order.
  std::vector<std::vector<int32_t>> members(static_cast<size_t>(k));
  for (int32_t i = 0; i < m; ++i) {
    members[static_cast<size_t>(cluster[static_cast<size_t>(i)])].push_back(i);
  }

  ReorderResult best;
  best.makespan_ms = std::numeric_limits<double>::infinity();

  std::vector<int32_t> perm(static_cast<size_t>(k));
  std::iota(perm.begin(), perm.end(), 0);
  do {
    std::vector<int32_t> order;
    order.reserve(static_cast<size_t>(m));
    for (const int32_t c : perm) {
      const auto& ms = members[static_cast<size_t>(c)];
      order.insert(order.end(), ms.begin(), ms.end());
    }
    AdaptiveScheduleOptions sched_opts;
    sched_opts.device_limit_mb = options.device_limit_mb;
    sched_opts.injection_order = order;
    std::optional<PipelineSchedule> sched =
        MemoryAwareAdaptiveSchedule(costs, sched_opts);
    ++best.orders_tried;
    if (!sched.has_value()) {
      continue;
    }
    const SimulatedTimeline tl = SimulateSchedule(*sched, costs, options.sim_options);
    if (tl.makespan_ms < best.makespan_ms) {
      best.makespan_ms = tl.makespan_ms;
      best.injection_order = std::move(order);
      best.schedule = std::move(*sched);
      best.feasible = true;
    }
  } while (std::next_permutation(perm.begin(), perm.end()));

  return best;
}

}  // namespace dynapipe::schedule
