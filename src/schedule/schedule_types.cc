#include "src/schedule/schedule_types.h"

#include <sstream>

namespace dynapipe::schedule {

std::string PipelineSchedule::ToString() const {
  std::ostringstream oss;
  for (size_t j = 0; j < devices.size(); ++j) {
    oss << "stage " << j << ": ";
    for (const auto& op : devices[j]) {
      oss << (op.is_backward ? "B" : "F") << op.microbatch << " ";
    }
    oss << "\n";
  }
  return oss.str();
}

void OpCosts::Validate() const {
  const size_t stages = fwd_ms.size();
  DYNAPIPE_CHECK(bwd_ms.size() == stages);
  DYNAPIPE_CHECK(act_mb.size() == stages);
  DYNAPIPE_CHECK(stages >= 1);
  const size_t mbs = fwd_ms.front().size();
  for (size_t j = 0; j < stages; ++j) {
    DYNAPIPE_CHECK(fwd_ms[j].size() == mbs);
    DYNAPIPE_CHECK(bwd_ms[j].size() == mbs);
    DYNAPIPE_CHECK(act_mb[j].size() == mbs);
  }
}

OpCosts OpCosts::Uniform(int32_t num_stages, int32_t num_microbatches, double fwd_ms,
                         double bwd_ms, double act_mb) {
  OpCosts costs;
  costs.fwd_ms.assign(static_cast<size_t>(num_stages),
                      std::vector<double>(static_cast<size_t>(num_microbatches), fwd_ms));
  costs.bwd_ms.assign(static_cast<size_t>(num_stages),
                      std::vector<double>(static_cast<size_t>(num_microbatches), bwd_ms));
  costs.act_mb.assign(static_cast<size_t>(num_stages),
                      std::vector<double>(static_cast<size_t>(num_microbatches), act_mb));
  return costs;
}

}  // namespace dynapipe::schedule
