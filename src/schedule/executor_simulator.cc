#include "src/schedule/executor_simulator.h"

#include <algorithm>

#include "src/common/check.h"

namespace dynapipe::schedule {

double SimulatedTimeline::MeanBubbleFraction() const {
  if (device_busy_ms.empty() || makespan_ms <= 0.0) {
    return 0.0;
  }
  double total = 0.0;
  for (const double busy : device_busy_ms) {
    total += 1.0 - busy / makespan_ms;
  }
  return total / static_cast<double>(device_busy_ms.size());
}

SimulatedTimeline SimulateSchedule(const PipelineSchedule& schedule,
                                   const OpCosts& costs,
                                   const ExecutorSimOptions& options) {
  costs.Validate();
  const int32_t c = schedule.num_stages();
  const int32_t m = schedule.num_microbatches;
  DYNAPIPE_CHECK(c == costs.num_stages());
  DYNAPIPE_CHECK(m == costs.num_microbatches());
  for (int32_t j = 0; j < c; ++j) {
    DYNAPIPE_CHECK_MSG(
        schedule.devices[static_cast<size_t>(j)].size() == static_cast<size_t>(2 * m),
        "each stage must run one fwd and one bwd per micro-batch");
  }

  SimulatedTimeline tl;
  tl.fwd.assign(static_cast<size_t>(c), std::vector<OpTimes>(static_cast<size_t>(m)));
  tl.bwd.assign(static_cast<size_t>(c), std::vector<OpTimes>(static_cast<size_t>(m)));
  std::vector<std::vector<bool>> fwd_done(static_cast<size_t>(c),
                                          std::vector<bool>(static_cast<size_t>(m)));
  std::vector<std::vector<bool>> bwd_done(static_cast<size_t>(c),
                                          std::vector<bool>(static_cast<size_t>(m)));
  std::vector<size_t> pc(static_cast<size_t>(c), 0);
  std::vector<double> clock(static_cast<size_t>(c), 0.0);
  tl.device_busy_ms.assign(static_cast<size_t>(c), 0.0);

  auto comm = [&](int32_t from, int32_t to, int32_t mb, bool backward) {
    return options.comm_delay_ms ? options.comm_delay_ms(from, to, mb, backward) : 0.0;
  };

  int32_t remaining = 2 * m * c;
  while (remaining > 0) {
    bool progress = false;
    for (int32_t j = 0; j < c; ++j) {
      const size_t sj = static_cast<size_t>(j);
      while (pc[sj] < schedule.devices[sj].size()) {
        const ScheduledOp op = schedule.devices[sj][pc[sj]];
        const size_t si = static_cast<size_t>(op.microbatch);
        double ready = 0.0;
        if (!op.is_backward) {
          if (j > 0) {
            if (!fwd_done[sj - 1][si]) {
              break;
            }
            ready = tl.fwd[sj - 1][si].end_ms + comm(j - 1, j, op.microbatch, false);
          }
        } else {
          if (j == c - 1) {
            if (!fwd_done[sj][si]) {
              break;
            }
            ready = tl.fwd[sj][si].end_ms;
          } else {
            if (!bwd_done[sj + 1][si]) {
              break;
            }
            ready = tl.bwd[sj + 1][si].end_ms + comm(j + 1, j, op.microbatch, true);
          }
        }
        const double dur = op.is_backward ? costs.bwd_ms[sj][si] : costs.fwd_ms[sj][si];
        OpTimes& t = op.is_backward ? tl.bwd[sj][si] : tl.fwd[sj][si];
        t.ready_ms = ready;
        t.start_ms = std::max(clock[sj], ready);
        t.end_ms = t.start_ms + dur;
        clock[sj] = t.end_ms;
        tl.device_busy_ms[sj] += dur;
        (op.is_backward ? bwd_done : fwd_done)[sj][si] = true;
        ++pc[sj];
        --remaining;
        progress = true;
      }
    }
    DYNAPIPE_CHECK_MSG(progress, "schedule cannot make progress (dependency cycle)");
  }

  for (const double t : clock) {
    tl.makespan_ms = std::max(tl.makespan_ms, t);
  }

  // Timed activation high-water mark per device: +act at fwd start, -act at bwd
  // end; frees sort before allocations at equal timestamps.
  tl.device_peak_mb.assign(static_cast<size_t>(c), 0.0);
  for (int32_t j = 0; j < c; ++j) {
    const size_t sj = static_cast<size_t>(j);
    std::vector<std::pair<double, double>> events;  // (time, delta)
    events.reserve(static_cast<size_t>(2 * m));
    for (int32_t i = 0; i < m; ++i) {
      const size_t si = static_cast<size_t>(i);
      events.emplace_back(tl.fwd[sj][si].start_ms, costs.act_mb[sj][si]);
      events.emplace_back(tl.bwd[sj][si].end_ms, -costs.act_mb[sj][si]);
    }
    std::sort(events.begin(), events.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) {
        return a.first < b.first;
      }
      return a.second < b.second;
    });
    double cur = 0.0;
    for (const auto& [time, delta] : events) {
      cur += delta;
      tl.device_peak_mb[sj] = std::max(tl.device_peak_mb[sj], cur);
    }
  }
  return tl;
}

}  // namespace dynapipe::schedule
