#include "src/schedule/adaptive_scheduler.h"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "src/common/check.h"

namespace dynapipe::schedule {

OpCostsBuild BuildOpCosts(int32_t num_stages,
                          const std::vector<model::MicroBatchShape>& shapes,
                          const StageShapePricer& price) {
  OpCostsBuild out;
  const int32_t c = num_stages;
  const int32_t m = static_cast<int32_t>(shapes.size());
  out.costs.fwd_ms.assign(static_cast<size_t>(c),
                          std::vector<double>(static_cast<size_t>(m)));
  out.costs.bwd_ms = out.costs.fwd_ms;
  out.costs.act_mb = out.costs.fwd_ms;
  out.mb_time.assign(static_cast<size_t>(m), 0.0);

  // Dedup shapes before pricing: micro-batches cut from runs of equal-length
  // samples collapse to the same padded shape.
  std::vector<size_t> distinct_of(static_cast<size_t>(m));
  std::vector<model::MicroBatchShape> distinct;
  {
    std::unordered_map<uint64_t, size_t> seen;
    seen.reserve(static_cast<size_t>(m));
    for (int32_t k = 0; k < m; ++k) {
      const model::MicroBatchShape& shape = shapes[static_cast<size_t>(k)];
      // Lengths are < 2^24 and counts < 2^16, so the pack is collision-free.
      const uint64_t key = (static_cast<uint64_t>(shape.num_samples) << 48) |
                           (static_cast<uint64_t>(shape.input_len) << 24) |
                           static_cast<uint64_t>(shape.target_len);
      const auto [it, inserted] = seen.emplace(key, distinct.size());
      if (inserted) {
        distinct.push_back(shape);
      }
      distinct_of[static_cast<size_t>(k)] = it->second;
    }
  }
  std::vector<double> d_fwd(distinct.size());
  std::vector<double> d_bwd(distinct.size());
  std::vector<double> d_act(distinct.size());
  for (int32_t s = 0; s < c; ++s) {
    const size_t ss = static_cast<size_t>(s);
    for (size_t u = 0; u < distinct.size(); ++u) {
      price(s, distinct[u], &d_fwd[u], &d_bwd[u], &d_act[u]);
    }
    for (int32_t k = 0; k < m; ++k) {
      const size_t sk = static_cast<size_t>(k);
      const size_t u = distinct_of[sk];
      out.costs.fwd_ms[ss][sk] = d_fwd[u];
      out.costs.bwd_ms[ss][sk] = d_bwd[u];
      out.costs.act_mb[ss][sk] = d_act[u];
      out.mb_time[sk] = std::max(out.mb_time[sk], d_fwd[u] + d_bwd[u]);
    }
  }
  return out;
}

std::optional<PipelineSchedule> MemoryAwareAdaptiveSchedule(
    const OpCosts& costs, const AdaptiveScheduleOptions& options) {
  costs.Validate();
  const int32_t c = costs.num_stages();
  const int32_t m = costs.num_microbatches();
  if (!options.device_limit_mb.empty()) {
    DYNAPIPE_CHECK(options.device_limit_mb.size() == static_cast<size_t>(c));
  }

  // Ready-op buffers per device (Alg. 1's S_f, S_b) and current memory m_j.
  std::vector<std::deque<int32_t>> fwd_buf(static_cast<size_t>(c));
  std::vector<std::deque<int32_t>> bwd_buf(static_cast<size_t>(c));
  std::vector<double> mem(static_cast<size_t>(c), 0.0);

  // Line 3: initialize the first stage's forward buffer with all micro-batches, in
  // injection order.
  if (options.injection_order.empty()) {
    for (int32_t i = 0; i < m; ++i) {
      fwd_buf[0].push_back(i);
    }
  } else {
    DYNAPIPE_CHECK(options.injection_order.size() == static_cast<size_t>(m));
    std::vector<bool> seen(static_cast<size_t>(m), false);
    for (const int32_t i : options.injection_order) {
      DYNAPIPE_CHECK(i >= 0 && i < m);
      DYNAPIPE_CHECK_MSG(!seen[static_cast<size_t>(i)], "duplicate micro-batch");
      seen[static_cast<size_t>(i)] = true;
      fwd_buf[0].push_back(i);
    }
  }

  PipelineSchedule sched;
  sched.num_microbatches = m;
  sched.devices.resize(static_cast<size_t>(c));

  // Ops unlocked during the current cycle join the buffers only at the cycle end
  // (Alg. 1's N_f, N_b), which is what makes scheduling proceed in waves.
  std::vector<std::vector<int32_t>> new_fwd(static_cast<size_t>(c));
  std::vector<std::vector<int32_t>> new_bwd(static_cast<size_t>(c));

  auto buffers_empty = [&]() {
    for (int32_t j = 0; j < c; ++j) {
      if (!fwd_buf[static_cast<size_t>(j)].empty() ||
          !bwd_buf[static_cast<size_t>(j)].empty()) {
        return false;
      }
    }
    return true;
  };

  while (!buffers_empty()) {
    bool progress = false;
    for (int32_t j = 0; j < c; ++j) {
      const size_t sj = static_cast<size_t>(j);
      new_fwd[sj].clear();
      new_bwd[sj].clear();
    }
    for (int32_t j = 0; j < c; ++j) {
      const size_t sj = static_cast<size_t>(j);
      if (!bwd_buf[sj].empty()) {  // lines 7-11: schedule one backward
        const int32_t i = bwd_buf[sj].front();
        bwd_buf[sj].pop_front();
        mem[sj] -= costs.act_mb[sj][static_cast<size_t>(i)];
        sched.devices[sj].push_back({i, true});
        if (j > 0) {
          new_bwd[sj - 1].push_back(i);
        }
        progress = true;
      }
      if (!fwd_buf[sj].empty()) {  // lines 12-19: schedule one forward
        const int32_t i = fwd_buf[sj].front();
        const double a = costs.act_mb[sj][static_cast<size_t>(i)];
        const bool fits = options.device_limit_mb.empty() ||
                          mem[sj] + a < options.device_limit_mb[sj];
        if (fits) {
          fwd_buf[sj].pop_front();
          mem[sj] += a;
          sched.devices[sj].push_back({i, false});
          if (j + 1 < c) {
            new_fwd[sj + 1].push_back(i);
          } else {
            new_bwd[sj].push_back(i);  // last stage: forward unlocks its backward
          }
          progress = true;
        }
        // else: leave at buffer head (Alg. 1 line 19) and retry next cycle.
      }
    }
    for (int32_t j = 0; j < c; ++j) {
      const size_t sj = static_cast<size_t>(j);
      for (const int32_t i : new_fwd[sj]) {
        fwd_buf[sj].push_back(i);
      }
      for (const int32_t i : new_bwd[sj]) {
        bwd_buf[sj].push_back(i);
      }
    }
    if (!progress) {
      // Every device is blocked on memory with nothing in flight to free it — a
      // single micro-batch exceeds some device limit.
      return std::nullopt;
    }
  }
  return sched;
}

std::vector<double> ScheduleMemoryHighWater(const PipelineSchedule& schedule,
                                            const OpCosts& costs) {
  costs.Validate();
  DYNAPIPE_CHECK(schedule.num_stages() == costs.num_stages());
  std::vector<double> high_water(static_cast<size_t>(schedule.num_stages()), 0.0);
  for (int32_t j = 0; j < schedule.num_stages(); ++j) {
    const size_t sj = static_cast<size_t>(j);
    double cur = 0.0;
    for (const auto& op : schedule.devices[sj]) {
      const double a = costs.act_mb[sj][static_cast<size_t>(op.microbatch)];
      if (op.is_backward) {
        cur -= a;
      } else {
        cur += a;
        high_water[sj] = std::max(high_water[sj], cur);
      }
    }
  }
  return high_water;
}

}  // namespace dynapipe::schedule
