// The 1F1B (PipeDream-Flush) schedule — the baseline used by Megatron-LM and the
// schedule DynaPipe's adaptive scheduler is compared against.
//
// Stage j first runs min(m, c-1-j) warm-up forward passes, then alternates one
// forward / one backward in the steady state, then drains the remaining backwards.
// Stage j therefore never holds more than (c - j) micro-batch activations, which is
// where the paper's 1/c per-micro-batch memory-limit factor comes from.
#ifndef DYNAPIPE_SRC_SCHEDULE_ONE_F_ONE_B_H_
#define DYNAPIPE_SRC_SCHEDULE_ONE_F_ONE_B_H_

#include <cstdint>

#include "src/schedule/schedule_types.h"

namespace dynapipe::schedule {

PipelineSchedule OneFOneBSchedule(int32_t num_microbatches, int32_t num_stages);

}  // namespace dynapipe::schedule

#endif  // DYNAPIPE_SRC_SCHEDULE_ONE_F_ONE_B_H_
