// Memory-aware adaptive scheduling (Alg. 1 of the paper).
//
// Micro-batch scheduling is treated as a re-entrant flow shop and solved with cyclic
// scheduling: in each cycle every device tries to execute one backward and one
// forward from its buffers of ready ops. Unlike 1F1B — which pins consecutive stages
// of a micro-batch back-to-back and therefore runs with zero safety stock in the
// steady state — the cyclic schedule lets ready ops accumulate in the buffers, so
// devices keep working when a previous stage runs long (Fig. 11b).
//
// Memory awareness: each device tracks the activation memory its scheduled-but-not-
// yet-backwarded micro-batches would hold; a forward whose activation would exceed
// the device limit is deferred (pushed back to the buffer head) until backward
// passes free memory (Fig. 11c). Training therefore proceeds as long as a single
// micro-batch's activation fits on the device.
#ifndef DYNAPIPE_SRC_SCHEDULE_ADAPTIVE_SCHEDULER_H_
#define DYNAPIPE_SRC_SCHEDULE_ADAPTIVE_SCHEDULER_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/schedule/schedule_types.h"

namespace dynapipe::schedule {

struct AdaptiveScheduleOptions {
  // Per-device activation-memory limits; empty disables the memory constraint.
  std::vector<double> device_limit_mb;
  // Injection order of micro-batches into the first stage's forward buffer. Empty
  // means natural order 0..m-1. This is the knob the micro-batch reorderer turns.
  std::vector<int32_t> injection_order;
};

// Returns std::nullopt when scheduling cannot complete within the memory limits
// (some single micro-batch exceeds a device's limit).
std::optional<PipelineSchedule> MemoryAwareAdaptiveSchedule(
    const OpCosts& costs, const AdaptiveScheduleOptions& options = {});

// Largest activation memory any device ever holds simultaneously under `schedule`
// (order-based accounting, same model Alg. 1 uses). Indexed per device.
std::vector<double> ScheduleMemoryHighWater(const PipelineSchedule& schedule,
                                            const OpCosts& costs);

}  // namespace dynapipe::schedule

#endif  // DYNAPIPE_SRC_SCHEDULE_ADAPTIVE_SCHEDULER_H_
