// Memory-aware adaptive scheduling (Alg. 1 of the paper).
//
// Micro-batch scheduling is treated as a re-entrant flow shop and solved with cyclic
// scheduling: in each cycle every device tries to execute one backward and one
// forward from its buffers of ready ops. Unlike 1F1B — which pins consecutive stages
// of a micro-batch back-to-back and therefore runs with zero safety stock in the
// steady state — the cyclic schedule lets ready ops accumulate in the buffers, so
// devices keep working when a previous stage runs long (Fig. 11b).
//
// Memory awareness: each device tracks the activation memory its scheduled-but-not-
// yet-backwarded micro-batches would hold; a forward whose activation would exceed
// the device limit is deferred (pushed back to the buffer head) until backward
// passes free memory (Fig. 11c). Training therefore proceeds as long as a single
// micro-batch's activation fits on the device.
#ifndef DYNAPIPE_SRC_SCHEDULE_ADAPTIVE_SCHEDULER_H_
#define DYNAPIPE_SRC_SCHEDULE_ADAPTIVE_SCHEDULER_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "src/model/shapes.h"
#include "src/schedule/schedule_types.h"

namespace dynapipe::schedule {

// Prices one (stage, shape) pair: forward time, backward time (recompute
// folded in by the caller), and held activation memory. The hook through
// which the planner plugs its profile walks — and, for incremental planning,
// its cross-iteration StageCostCache — while the scheduler stays
// cost-model-agnostic.
using StageShapePricer = std::function<void(
    int32_t stage, const model::MicroBatchShape& shape, double* fwd_ms,
    double* bwd_ms, double* act_mb)>;

struct OpCostsBuild {
  OpCosts costs;
  // Bottleneck time per micro-batch: max over stages of fwd + bwd.
  std::vector<double> mb_time;
};

// Assembles per-op planning inputs from per-(stage, shape) prices. Micro-
// batches cut from runs of equal-length samples share padded shapes, so each
// distinct shape is priced exactly once per stage and fanned out — the
// shape-dedup that used to live in the planner's replica build, hoisted here
// so every schedule consumer (and the stage-cost memo) shares it.
OpCostsBuild BuildOpCosts(int32_t num_stages,
                          const std::vector<model::MicroBatchShape>& shapes,
                          const StageShapePricer& price);

struct AdaptiveScheduleOptions {
  // Per-device activation-memory limits; empty disables the memory constraint.
  std::vector<double> device_limit_mb;
  // Injection order of micro-batches into the first stage's forward buffer. Empty
  // means natural order 0..m-1. This is the knob the micro-batch reorderer turns.
  std::vector<int32_t> injection_order;
};

// Returns std::nullopt when scheduling cannot complete within the memory limits
// (some single micro-batch exceeds a device's limit).
std::optional<PipelineSchedule> MemoryAwareAdaptiveSchedule(
    const OpCosts& costs, const AdaptiveScheduleOptions& options = {});

// Largest activation memory any device ever holds simultaneously under `schedule`
// (order-based accounting, same model Alg. 1 uses). Indexed per device.
std::vector<double> ScheduleMemoryHighWater(const PipelineSchedule& schedule,
                                            const OpCosts& costs);

}  // namespace dynapipe::schedule

#endif  // DYNAPIPE_SRC_SCHEDULE_ADAPTIVE_SCHEDULER_H_
