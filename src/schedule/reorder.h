// Micro-batch injection ordering (§5 "Micro-batch ordering").
//
// The injection order of micro-batches into the pipeline affects throughput when
// their execution times differ, but the scheduling problem is too hard to model
// directly. Following the paper: cluster micro-batches by predicted execution time
// into a small number of clusters (3–4 suffice empirically), then try every
// permutation of the clusters (keeping within-cluster order), score each candidate
// order by simulating the memory-aware adaptive schedule, and keep the best.
#ifndef DYNAPIPE_SRC_SCHEDULE_REORDER_H_
#define DYNAPIPE_SRC_SCHEDULE_REORDER_H_

#include <cstdint>
#include <vector>

#include "src/schedule/adaptive_scheduler.h"
#include "src/schedule/executor_simulator.h"
#include "src/schedule/schedule_types.h"

namespace dynapipe::schedule {

struct ReorderOptions {
  // Number of execution-time clusters to permute. The paper finds 3 or 4 adequate;
  // candidate orders grow as clusters! so keep this small.
  int32_t num_clusters = 3;
  // Device memory limits forwarded to the adaptive scheduler.
  std::vector<double> device_limit_mb;
  // Communication model forwarded to the timeline simulation.
  ExecutorSimOptions sim_options;
};

struct ReorderResult {
  std::vector<int32_t> injection_order;  // best order found
  PipelineSchedule schedule;             // adaptive schedule under that order
  double makespan_ms = 0.0;
  int32_t orders_tried = 0;
  bool feasible = false;
};

// `microbatch_time_ms[i]` is the predicted execution time of micro-batch i (the
// clustering key). Costs drive scheduling/simulation as usual.
ReorderResult ReorderMicroBatches(const OpCosts& costs,
                                  const std::vector<double>& microbatch_time_ms,
                                  const ReorderOptions& options);

// 1D k-means (Lloyd's with quantile init) used for the execution-time clustering;
// exposed for tests. Returns cluster index per element, clusters sorted by center
// ascending.
std::vector<int32_t> ClusterByTime(const std::vector<double>& values,
                                   int32_t num_clusters);

}  // namespace dynapipe::schedule

#endif  // DYNAPIPE_SRC_SCHEDULE_REORDER_H_
