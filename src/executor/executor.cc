#include "src/executor/executor.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <functional>
#include <memory>
#include <optional>
#include <random>
#include <thread>
#include <utility>

#include "src/common/fault_injection.h"
#include "src/common/metrics.h"
#include "src/common/trace.h"
#include "src/runtime/instruction_store.h"
#include "src/service/plan_serde.h"
#include "src/transport/frame.h"
#include "src/transport/mux.h"
#include "src/transport/remote_store.h"
#include "src/transport/shm_store.h"
#include "src/transport/transport.h"

namespace dynapipe::executor {
namespace {

// How long a liveness announcement (kAttach) may wait for its reply. Bounded
// because the one window where a server accepts but never serves is its own
// teardown — an unbounded wait there turns publisher shutdown into an
// executor hang.
constexpr int kAttachReplyTimeoutMs = 1000;

// Deterministic synthetic hardware for the standalone simulator: durations
// derived only from what the plan itself carries (shapes and transfer
// sizes), so any well-formed plan executes without profiles or model
// configs. Magnitudes are loosely GPU-shaped (sub-ms kernels, GB/s-scale
// transfers); straggler detection compares wall clock across replicas, not
// these simulated durations.
class SyntheticGroundTruth final : public sim::GroundTruth {
 public:
  double ComputeMs(int32_t device, const sim::Instruction& instr) override {
    (void)device;
    const double tokens =
        static_cast<double>(instr.shape.num_samples) *
        static_cast<double>(instr.shape.input_len + instr.shape.target_len);
    const double forward = 0.02 + tokens * 2e-6;
    return instr.type == sim::InstrType::kBackwardPass ? 2.0 * forward
                                                       : forward;
  }
  double ActivationMb(int32_t device, const sim::Instruction& instr) override {
    (void)device;
    const double tokens =
        static_cast<double>(instr.shape.num_samples) *
        static_cast<double>(instr.shape.input_len + instr.shape.target_len);
    return tokens * 1e-3;
  }
  double TransferMs(int32_t src, int32_t dst, int64_t bytes) override {
    (void)src;
    (void)dst;
    return 0.005 + static_cast<double>(bytes) / (100.0 * 1024.0 * 1024.0);
  }
};

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

// Capped, jittered exponential backoff. The jitter (uniform in
// [0.5, 1.5) x current) decorrelates a fleet of executors that all lost the
// same server at the same moment — without it every retry storm arrives in
// lockstep. Seeded per instance from pid + clock; reproducibility of the
// *sleep pattern* is irrelevant, only boundedness is.
class Backoff {
 public:
  Backoff(int initial_ms, int cap_ms)
      : initial_(std::max(1, initial_ms)),
        cap_(std::max(initial_, cap_ms)),
        current_(initial_),
        rng_(static_cast<uint32_t>(::getpid()) * 2654435761u ^
             static_cast<uint32_t>(std::chrono::steady_clock::now()
                                       .time_since_epoch()
                                       .count())) {}

  void Sleep() {
    std::uniform_real_distribution<double> jitter(0.5, 1.5);
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        static_cast<double>(current_) * jitter(rng_)));
    current_ = std::min(current_ * 2, cap_);
  }
  void Reset() { current_ = initial_; }

 private:
  int initial_;
  int cap_;
  int current_;
  std::minstd_rand rng_;
};

// Waits for the endpoint to exist so the store clients' fatal
// connect/attach contracts never fire on a merely slow trainer: a missing
// endpoint after the timeout is a clean error report, not an abort.
bool WaitForSocket(const std::string& path, int timeout_ms) {
  std::unique_ptr<transport::Stream> probe =
      transport::ConnectUnixSocket(path, timeout_ms);
  if (probe == nullptr) {
    return false;
  }
  probe->Close();
  return true;
}

bool WaitForShmSegment(const std::string& name, int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const int fd = ::shm_open(name.c_str(), O_RDWR, 0);
    if (fd >= 0) {
      ::close(fd);
      return true;
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

// Non-fatal publish-poll probe for the one-shot socket endpoint, speaking
// the frame protocol directly over its own throwaway connection: the store
// client's Contains treats a dead publisher as a fatal contract violation
// (correct for a mid-epoch fetch, wrong for a daemon waiting on the *next*
// plan), so the poll loop uses this instead. nullopt = the publisher is
// gone — an open-ended run reads that as end-of-epoch. A single failure is
// NOT gone: one connect can bounce off a momentarily full listen backlog
// (EAGAIN under many polling executors) or a teardown race, so the verdict
// takes `attempts` consecutive failures with jittered backoff between. The
// per-connect timeout derives from attach_timeout_ms at the caller.
std::optional<bool> ProbeContainsOverSocket(const std::string& path,
                                            int64_t iteration,
                                            int32_t replica,
                                            int connect_timeout_ms,
                                            int attempts, int backoff_ms) {
  Backoff backoff(backoff_ms, /*cap_ms=*/500);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      backoff.Sleep();
    }
    std::unique_ptr<transport::Stream> conn =
        transport::ConnectUnixSocket(path, connect_timeout_ms);
    if (conn == nullptr) {
      continue;
    }
    transport::Frame request;
    request.type = transport::FrameType::kContains;
    request.iteration = iteration;
    request.replica = replica;
    if (!WriteFrame(*conn, request)) {
      continue;
    }
    std::optional<transport::Frame> reply = ReadFrame(*conn);
    if (!reply.has_value() || reply->type != transport::FrameType::kBool ||
        reply->payload.size() != 1) {
      continue;
    }
    return reply->payload[0] != '\0';
  }
  return std::nullopt;
}

// One strict request/response exchange on a dedicated stream (the one-shot
// endpoint's persistent liveness connection). nullopt on any failure.
std::optional<transport::Frame> ExchangeOnStream(transport::Stream& stream,
                                                 const transport::Frame& req) {
  if (!WriteFrame(stream, req)) {
    return std::nullopt;
  }
  return ReadFrame(stream);
}

common::Counter& ReconnectCounter() {
  static common::Counter& c = common::MetricsRegistry::Instance().GetCounter(
      "executor_reconnects_total");
  return c;
}

// One kStatsRequest round trip on a dedicated stream, folded into the
// tracer's clock offset — the one-shot endpoint's version of
// MuxInstructionStore::TrySyncClock. Best effort: alignment failure just
// leaves the wall-clock anchor in place.
void SyncClockOnStream(transport::Stream& stream) {
  transport::Frame request;
  request.type = transport::FrameType::kStatsRequest;
  common::Tracer& tracer = common::Tracer::Instance();
  const int64_t send_us = tracer.NowUs();
  std::optional<transport::Frame> reply = ExchangeOnStream(stream, request);
  const int64_t recv_us = tracer.NowUs();
  int64_t server_now_us = 0;
  common::MetricsSnapshot snapshot;
  if (reply.has_value() && reply->type == transport::FrameType::kStatsReply &&
      transport::TryParseStatsPayload(reply->payload, &server_now_us,
                                      &snapshot)) {
    tracer.AlignToPeer(server_now_us, send_us, recv_us);
  }
}

}  // namespace

AttachEndpoint DetectEndpoint(const std::string& attach) {
  // A POSIX shm name is "/name" — exactly one slash, leading. Socket paths
  // are real filesystem paths ("/tmp/....sock") with interior slashes.
  if (!attach.empty() && attach[0] == '/' &&
      attach.find('/', 1) == std::string::npos) {
    return AttachEndpoint::kSharedMemory;
  }
  return AttachEndpoint::kUnixSocket;
}

const char* EndpointName(AttachEndpoint endpoint) {
  switch (endpoint) {
    case AttachEndpoint::kAuto: return "auto";
    case AttachEndpoint::kUnixSocket: return "unix-socket";
    case AttachEndpoint::kUnixSocketMux: return "unix-socket-mux";
    case AttachEndpoint::kSharedMemory: return "shared-memory";
  }
  return "?";
}

ExecutorReport RunExecutor(const ExecutorOptions& options) {
  ExecutorReport report;
  const auto fail = [&report](std::string error) {
    report.ok = false;
    report.error = std::move(error);
    return report;
  };
  if (options.attach.empty()) {
    return fail("no --attach endpoint given");
  }

  AttachEndpoint endpoint = options.endpoint;
  if (endpoint == AttachEndpoint::kAuto) {
    endpoint = DetectEndpoint(options.attach);
  }

  // Every mid-run connect (poll probes, one-shot requests, reconnects)
  // derives its patience from the attach budget: 1% of it with a 10 ms
  // floor, so one knob scales the executor's whole tolerance for a slow
  // publisher.
  const int connect_timeout_ms = std::max(10, options.attach_timeout_ms / 100);
  const int reconnect_attempts = std::max(1, options.reconnect_attempts);

  std::shared_ptr<runtime::InstructionStoreInterface> store;
  // Shm only: the concrete handle, for the liveness slot calls the
  // interface does not carry (announce / touch / detach).
  std::shared_ptr<transport::ShmInstructionStore> shm_store;
  std::shared_ptr<transport::MuxInstructionStore> mux_client;
  std::shared_ptr<transport::RemoteInstructionStore> remote_client;
  std::unique_ptr<transport::Stream> liveness;  // one-shot endpoint only
  // Sticky once the server answers kEvicted anywhere: this replica was
  // declared dead and its plans re-published — the only correct move is to
  // stop, and for an open-ended run that is a *clean* stop.
  bool evicted = false;

  switch (endpoint) {
    case AttachEndpoint::kUnixSocket: {
      if (!WaitForSocket(options.attach, options.attach_timeout_ms)) {
        return fail("no server listening on socket " + options.attach);
      }
      remote_client = transport::RemoteInstructionStore::OverUnixSocket(
          options.attach, connect_timeout_ms);
      store = remote_client;
      if (options.announce_liveness) {
        // A dedicated idle connection announcing this replica: its only job
        // is to die with the process, turning a SIGKILL into an immediate
        // unclean-disconnect event on the server instead of a heartbeat
        // deadline later. Failure to establish it degrades (no
        // announcement), never aborts.
        liveness = transport::ConnectUnixSocket(options.attach,
                                                options.attach_timeout_ms);
        if (liveness != nullptr) {
          transport::Frame attach_req;
          attach_req.type = transport::FrameType::kAttach;
          attach_req.replica = options.replica;
          if (options.join) {
            // Declarative join intent (frame v4); admission itself rides the
            // liveness event this attach fires on the publisher.
            attach_req.payload.push_back(
                static_cast<char>(transport::kAttachCapJoin));
          }
          std::optional<transport::Frame> reply =
              ExchangeOnStream(*liveness, attach_req);
          if (reply.has_value() &&
              reply->type == transport::FrameType::kEvicted) {
            evicted = true;
          }
          if (!evicted) {
            SyncClockOnStream(*liveness);
          }
        }
      }
      break;
    }
    case AttachEndpoint::kUnixSocketMux: {
      std::unique_ptr<transport::Stream> stream =
          transport::ConnectUnixSocket(options.attach,
                                       options.attach_timeout_ms);
      if (stream == nullptr) {
        return fail("no server listening on socket " + options.attach);
      }
      mux_client = std::make_shared<transport::MuxInstructionStore>(
          std::move(stream));
      store = mux_client;
      if (options.announce_liveness) {
        bool attach_evicted = false;
        if (!mux_client->Attach(options.replica, &attach_evicted,
                                kAttachReplyTimeoutMs, options.join)) {
          return fail("liveness attach on " + options.attach + " failed");
        }
        evicted = attach_evicted;
      }
      if (!evicted) {
        // Fold the publisher's trace clock into ours so this executor's
        // spans land on the merged timeline. Best effort.
        mux_client->TrySyncClock(kAttachReplyTimeoutMs);
      }
      break;
    }
    case AttachEndpoint::kSharedMemory:
      if (!WaitForShmSegment(options.attach, options.attach_timeout_ms)) {
        return fail("shm segment " + options.attach + " never appeared");
      }
      shm_store = transport::ShmInstructionStore::Attach(
          options.attach, options.attach_timeout_ms);
      store = shm_store;
      if (options.announce_liveness) {
        // Claims this replica's heartbeat slot in the segment header: the
        // shm-native analogue of the socket kAttach frame. The publisher's
        // poller sees the claim and starts tracking liveness from it.
        shm_store->AnnounceReplica(options.replica);
      }
      break;
    case AttachEndpoint::kAuto:
      return fail("unreachable endpoint kind");
  }
  report.heartbeat_supported = store->supports_heartbeat();

  // Mid-run mux reconnect: bounded attempts with capped, jittered backoff.
  // True restores a working (re-attached) client; false means the publisher
  // is gone or this replica was evicted (check `evicted`).
  const auto reconnect_mux = [&]() -> bool {
    Backoff backoff(options.reconnect_backoff_ms, /*cap_ms=*/500);
    for (int attempt = 0; attempt < reconnect_attempts; ++attempt) {
      if (attempt > 0) {
        backoff.Sleep();
      }
      std::unique_ptr<transport::Stream> stream =
          transport::ConnectUnixSocket(options.attach, connect_timeout_ms);
      if (stream == nullptr) {
        continue;
      }
      auto fresh = std::make_shared<transport::MuxInstructionStore>(
          std::move(stream));
      if (options.announce_liveness) {
        bool attach_evicted = false;
        // Bounded: the reconnect window overlaps server teardown, where a
        // connection is accepted by the OS but never served.
        if (!fresh->Attach(options.replica, &attach_evicted,
                           kAttachReplyTimeoutMs, options.join)) {
          continue;
        }
        if (attach_evicted) {
          evicted = true;
          return false;
        }
      }
      fresh->TrySyncClock(kAttachReplyTimeoutMs);
      mux_client = fresh;
      store = fresh;
      ++report.reconnects;
      ReconnectCounter().Add();
      return true;
    }
    return false;
  };

  // --- Per-endpoint operations the main loop drives ---
  // probe: nullopt = publisher gone (or evicted — check the flag).
  std::function<std::optional<bool>(int64_t)> probe;
  // fetch: nullopt with *gone=false means the key vanished (kMissing —
  // recovery reclaimed it); the caller re-polls rather than aborting.
  std::function<std::optional<sim::ExecutionPlan>(int64_t, bool*)> fetch;
  // send_heartbeat: false = could not deliver (publisher gone).
  std::function<bool(int64_t, double)> send_heartbeat;
  std::function<void()> goodbye;
  // request_drain: the graceful-leave handshake. True once the publisher
  // acknowledged (its MembershipCoordinator has fenced this replica and
  // reposted the unfetched backlog); false on a vanished publisher or
  // eviction (check the flag). Called between iterations, so "finish
  // in-flight work" is already satisfied when the ack lands.
  std::function<bool()> request_drain;

  switch (endpoint) {
    case AttachEndpoint::kUnixSocket: {
      probe = [&](int64_t iteration) {
        return ProbeContainsOverSocket(options.attach, iteration,
                                       options.replica, connect_timeout_ms,
                                       std::max(3, reconnect_attempts),
                                       /*backoff_ms=*/20);
      };
      fetch = [&](int64_t iteration,
                  bool* gone) -> std::optional<sim::ExecutionPlan> {
        *gone = false;
        Backoff backoff(options.reconnect_backoff_ms, /*cap_ms=*/500);
        for (int attempt = 0; attempt < reconnect_attempts; ++attempt) {
          if (attempt > 0) {
            backoff.Sleep();
          }
          bool lost = false;
          std::optional<sim::ExecutionPlan> plan =
              remote_client->TryFetch(iteration, options.replica, &lost);
          if (plan.has_value()) {
            if (attempt > 0) {
              ++report.reconnects;
              ReconnectCounter().Add();
            }
            return plan;
          }
          if (!lost) {
            return std::nullopt;  // kMissing: reclaimed, not a wire problem
          }
        }
        *gone = true;
        return std::nullopt;
      };
      send_heartbeat = [&](int64_t iteration, double wall_ms) {
        Backoff backoff(options.reconnect_backoff_ms, /*cap_ms=*/500);
        for (int attempt = 0; attempt < reconnect_attempts; ++attempt) {
          if (attempt > 0) {
            backoff.Sleep();
          }
          bool hb_evicted = false;
          if (remote_client->TryHeartbeat(options.replica, iteration, wall_ms,
                                          &hb_evicted)) {
            if (attempt > 0) {
              ++report.reconnects;
              ReconnectCounter().Add();
            }
            if (hb_evicted) {
              evicted = true;
            }
            return true;
          }
        }
        return false;
      };
      goodbye = [&] {
        if (liveness != nullptr && !evicted) {
          transport::Frame detach_req;
          detach_req.type = transport::FrameType::kDetach;
          detach_req.replica = options.replica;
          ExchangeOnStream(*liveness, detach_req);  // best effort
        }
        if (liveness != nullptr) {
          liveness->Close();
        }
      };
      request_drain = [&]() -> bool {
        transport::Frame drain_req;
        drain_req.type = transport::FrameType::kDrainRequest;
        drain_req.replica = options.replica;
        // Prefer the persistent liveness stream (the server already tracks
        // this replica on it); fall back to a throwaway connection when
        // liveness announcement was disabled or failed.
        std::optional<transport::Frame> reply;
        if (liveness != nullptr) {
          reply = ExchangeOnStream(*liveness, drain_req);
        } else {
          std::unique_ptr<transport::Stream> conn =
              transport::ConnectUnixSocket(options.attach, connect_timeout_ms);
          if (conn != nullptr) {
            reply = ExchangeOnStream(*conn, drain_req);
          }
        }
        if (!reply.has_value()) {
          return false;
        }
        if (reply->type == transport::FrameType::kEvicted) {
          evicted = true;
          return false;
        }
        return reply->type == transport::FrameType::kDrainAck;
      };
      break;
    }
    case AttachEndpoint::kUnixSocketMux: {
      // The satellite fix this PR ships: polls ride the persistent mux
      // stream (TryContains) instead of opening a throwaway probe
      // connection per poll. The reply timeout doubles as the wedged-server
      // detector; a lost stream goes through the bounded reconnect.
      probe = [&](int64_t iteration) -> std::optional<bool> {
        for (;;) {
          bool present = false;
          if (mux_client->TryContains(iteration, options.replica, &present,
                                      /*timeout_ms=*/options.idle_timeout_ms)) {
            return present;
          }
          if (!reconnect_mux()) {
            return std::nullopt;
          }
        }
      };
      fetch = [&](int64_t iteration,
                  bool* gone) -> std::optional<sim::ExecutionPlan> {
        *gone = false;
        for (;;) {
          bool lost = false;
          std::optional<sim::ExecutionPlan> plan =
              mux_client->TryFetch(iteration, options.replica, &lost);
          if (plan.has_value()) {
            return plan;
          }
          if (!lost) {
            return std::nullopt;  // kMissing: reclaimed, not a wire problem
          }
          if (!reconnect_mux()) {
            *gone = true;
            return std::nullopt;
          }
        }
      };
      send_heartbeat = [&](int64_t iteration, double wall_ms) {
        for (;;) {
          bool hb_evicted = false;
          if (mux_client->TryHeartbeat(options.replica, iteration, wall_ms,
                                       &hb_evicted)) {
            if (hb_evicted) {
              evicted = true;
            }
            return true;
          }
          if (!reconnect_mux()) {
            return false;
          }
        }
      };
      goodbye = [&] {
        if (options.announce_liveness && !evicted &&
            mux_client->connection_ok()) {
          mux_client->Detach(options.replica);  // best effort
        }
      };
      request_drain = [&]() -> bool {
        bool drain_evicted = false;
        if (!mux_client->TryDrain(options.replica, &drain_evicted,
                                  kAttachReplyTimeoutMs)) {
          return false;
        }
        if (drain_evicted) {
          evicted = true;
          return false;
        }
        return true;
      };
      break;
    }
    default: {
      // Shm: the mapping stays valid in this process even after the owner
      // unlinks the name, so the segment cannot "go away" mid-run. The
      // liveness channel is the segment itself — each probe stamps this
      // replica's heartbeat-slot alive marker, so a replica parked waiting
      // for a slow planner still reads as alive to the publisher's poller.
      probe = [&](int64_t iteration) -> std::optional<bool> {
        if (options.announce_liveness) {
          shm_store->TouchReplica(options.replica);
        }
        return store->Contains(iteration, options.replica);
      };
      fetch = [&](int64_t iteration,
                  bool* gone) -> std::optional<sim::ExecutionPlan> {
        *gone = false;
        return store->Fetch(iteration, options.replica);
      };
      send_heartbeat = [&](int64_t iteration, double wall_ms) {
        return store->Heartbeat(options.replica, iteration, wall_ms);
      };
      goodbye = [&] {
        if (options.announce_liveness) {
          // Clean detach: flips the slot's detached flag so the poller
          // reports a deliberate exit instead of ageing into a false death.
          shm_store->DetachReplica(options.replica);
        }
      };
      request_drain = [&]() -> bool {
        // The shm drain word: request (2), then poll for the publisher's
        // acknowledgement (3). Bounded: a publisher that never acks (gone,
        // or the membership loop is not wired) must not wedge the leaver —
        // proceed to the clean detach either way; the handoff just completes
        // without a green light.
        shm_store->RequestDrain(options.replica);
        const auto deadline =
            std::chrono::steady_clock::now() +
            std::chrono::milliseconds(std::max(100, options.idle_timeout_ms));
        while (std::chrono::steady_clock::now() < deadline) {
          if (shm_store->DrainAcknowledged(options.replica)) {
            return true;
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
        return false;
      };
      break;
    }
  }

  SyntheticGroundTruth ground_truth;
  for (int64_t iteration = options.start_iteration;
       !evicted && (options.iterations < 0 ||
                    iteration < options.start_iteration + options.iterations);
       ++iteration) {
    if (options.drain_after >= 0 &&
        report.iterations_run >= options.drain_after) {
      // Graceful leave, between iterations: the last one already completed
      // (and heartbeated), so there is no in-flight work to wait out —
      // request the drain, let the publisher hand the unfetched backlog to
      // the survivors, and exit through the clean goodbye below. An
      // unacknowledged drain (publisher gone, or eviction) still exits;
      // `drained` records only the clean handshake.
      report.drained = request_drain();
      break;
    }
    // Publish-before-fetch: poll until the publisher's push lands. Fetching
    // early would trip the store's intentional fatal contract (one-shot
    // path) or burn kMissing round trips (liveness-aware paths). Backoff is
    // exponential with a cap and jitter: over the one-shot socket every
    // probe is a fresh connection plus a server handler thread, so an
    // executor parked behind a slow planner must not hammer the publisher —
    // and a fleet of them must not do so in phase.
    const auto poll_deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(options.idle_timeout_ms);
    Backoff poll_backoff(std::max(1, options.poll_interval_ms),
                         std::max(64, options.poll_interval_ms));
    bool available = false;
    bool publisher_gone = false;
    for (;;) {
      const std::optional<bool> published = probe(iteration);
      if (evicted) {
        break;
      }
      if (!published.has_value()) {
        publisher_gone = true;
        break;
      }
      if (*published) {
        available = true;
        break;
      }
      if (std::chrono::steady_clock::now() >= poll_deadline) {
        break;
      }
      poll_backoff.Sleep();
    }
    if (evicted) {
      break;
    }
    if (!available) {
      if (options.iterations < 0) {
        break;  // open-ended run: drained or the publisher shut down
      }
      return fail("iteration " + std::to_string(iteration) + " replica " +
                  std::to_string(options.replica) +
                  (publisher_gone ? ": publisher went away"
                                  : " never published"));
    }

    const auto t0 = std::chrono::steady_clock::now();
    bool gone = false;
    std::optional<sim::ExecutionPlan> plan_opt = fetch(iteration, &gone);
    if (!plan_opt.has_value()) {
      if (evicted) {
        break;
      }
      if (gone) {
        if (options.iterations < 0) {
          break;
        }
        return fail("iteration " + std::to_string(iteration) +
                    ": publisher went away mid-fetch");
      }
      // The key was published a moment ago and is gone now: recovery
      // reclaimed it (we are probably being declared dead). Re-poll the
      // same iteration; the idle timeout or an eviction notice resolves it.
      --iteration;
      continue;
    }
    const sim::ExecutionPlan plan = std::move(*plan_opt);
    const double fetch_ms = MsSince(t0);

    sim::ClusterSim cluster(plan.num_devices(), &ground_truth);
    // The "executed" span covers the cluster run plus any injected slowness
    // — a wedged executor shows up in the trace as one long executed span.
    std::optional<common::TraceSpan> exec_span;
    exec_span.emplace("executed", "plan", iteration, options.replica);
    const sim::SimResult result = cluster.Run(plan);
    if (result.deadlocked || result.oom) {
      return fail("iteration " + std::to_string(iteration) + " " +
                  result.diagnostic);
    }
    if (options.slow_ms > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          options.slow_ms));
    }
    // Stall site: a wedged executor sleeps *inside* the iteration, past the
    // publisher's liveness deadline, then wakes into the eviction fence.
    common::FaultPoint("executor.iteration", iteration);
    exec_span.reset();
    const double exec_wall_ms = MsSince(t0);

    if (options.heartbeat && report.heartbeat_supported) {
      // Crash site: SIGKILL after executing but before reporting — the
      // worst-timed death, leaving the publisher to infer it from the
      // dropped connection or the missed deadline.
      common::FaultPoint("executor.heartbeat", iteration);
      const auto hb0 = std::chrono::steady_clock::now();
      {
        common::TraceSpan span("heartbeat", "plan", iteration,
                               options.replica);
        if (send_heartbeat(iteration, exec_wall_ms)) {
          ++report.heartbeats_sent;
        }
      }
      report.heartbeat_ms_total += MsSince(hb0);
    }

    ++report.iterations_run;
    for (const auto& device : plan.devices) {
      report.instructions_executed +=
          static_cast<int64_t>(device.instructions.size());
    }
    report.fetch_ms_total += fetch_ms;
    report.exec_wall_ms_total += exec_wall_ms;
    if (options.observer) {
      IterationOutcome outcome;
      outcome.iteration = iteration;
      outcome.plan = &plan;
      outcome.sim = &result;
      outcome.fetch_ms = fetch_ms;
      outcome.exec_wall_ms = exec_wall_ms;
      options.observer(outcome);
    }

  }
  goodbye();
  if (evicted) {
    report.evicted = true;
    if (options.iterations >= 0) {
      return fail("replica " + std::to_string(options.replica) +
                  " evicted: declared dead and its plans re-published");
    }
  }
  report.ok = true;
  return report;
}

}  // namespace dynapipe::executor
