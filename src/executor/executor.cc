#include "src/executor/executor.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <memory>
#include <optional>
#include <thread>
#include <utility>

#include "src/runtime/instruction_store.h"
#include "src/service/plan_serde.h"
#include "src/transport/frame.h"
#include "src/transport/mux.h"
#include "src/transport/remote_store.h"
#include "src/transport/shm_store.h"
#include "src/transport/transport.h"

namespace dynapipe::executor {
namespace {

// Deterministic synthetic hardware for the standalone simulator: durations
// derived only from what the plan itself carries (shapes and transfer
// sizes), so any well-formed plan executes without profiles or model
// configs. Magnitudes are loosely GPU-shaped (sub-ms kernels, GB/s-scale
// transfers); straggler detection compares wall clock across replicas, not
// these simulated durations.
class SyntheticGroundTruth final : public sim::GroundTruth {
 public:
  double ComputeMs(int32_t device, const sim::Instruction& instr) override {
    (void)device;
    const double tokens =
        static_cast<double>(instr.shape.num_samples) *
        static_cast<double>(instr.shape.input_len + instr.shape.target_len);
    const double forward = 0.02 + tokens * 2e-6;
    return instr.type == sim::InstrType::kBackwardPass ? 2.0 * forward
                                                       : forward;
  }
  double ActivationMb(int32_t device, const sim::Instruction& instr) override {
    (void)device;
    const double tokens =
        static_cast<double>(instr.shape.num_samples) *
        static_cast<double>(instr.shape.input_len + instr.shape.target_len);
    return tokens * 1e-3;
  }
  double TransferMs(int32_t src, int32_t dst, int64_t bytes) override {
    (void)src;
    (void)dst;
    return 0.005 + static_cast<double>(bytes) / (100.0 * 1024.0 * 1024.0);
  }
};

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

// Waits for the endpoint to exist so the store clients' fatal
// connect/attach contracts never fire on a merely slow trainer: a missing
// endpoint after the timeout is a clean error report, not an abort.
bool WaitForSocket(const std::string& path, int timeout_ms) {
  std::unique_ptr<transport::Stream> probe =
      transport::ConnectUnixSocket(path, timeout_ms);
  if (probe == nullptr) {
    return false;
  }
  probe->Close();
  return true;
}

bool WaitForShmSegment(const std::string& name, int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const int fd = ::shm_open(name.c_str(), O_RDWR, 0);
    if (fd >= 0) {
      ::close(fd);
      return true;
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

// Non-fatal publish-poll probe for the socket endpoints, speaking the frame
// protocol directly over its own throwaway connection: the store clients'
// Contains treats a dead publisher as a fatal contract violation (correct
// for a mid-epoch fetch, wrong for a daemon waiting on the *next* plan), so
// the poll loop uses this instead. nullopt = the publisher is gone — an
// open-ended run reads that as end-of-epoch. A single failure is NOT gone:
// one connect can bounce off a momentarily full listen backlog (EAGAIN
// under many polling executors) or a teardown race, so the verdict takes
// three consecutive failures over ~60 ms.
std::optional<bool> ProbeContainsOverSocket(const std::string& path,
                                            int64_t iteration,
                                            int32_t replica) {
  for (int attempt = 0; attempt < 3; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    std::unique_ptr<transport::Stream> conn =
        transport::ConnectUnixSocket(path, /*timeout_ms=*/10);
    if (conn == nullptr) {
      continue;
    }
    transport::Frame request;
    request.type = transport::FrameType::kContains;
    request.iteration = iteration;
    request.replica = replica;
    if (!WriteFrame(*conn, request)) {
      continue;
    }
    std::optional<transport::Frame> reply = ReadFrame(*conn);
    if (!reply.has_value() || reply->type != transport::FrameType::kBool ||
        reply->payload.size() != 1) {
      continue;
    }
    return reply->payload[0] != '\0';
  }
  return std::nullopt;
}

}  // namespace

AttachEndpoint DetectEndpoint(const std::string& attach) {
  // A POSIX shm name is "/name" — exactly one slash, leading. Socket paths
  // are real filesystem paths ("/tmp/....sock") with interior slashes.
  if (!attach.empty() && attach[0] == '/' &&
      attach.find('/', 1) == std::string::npos) {
    return AttachEndpoint::kSharedMemory;
  }
  return AttachEndpoint::kUnixSocket;
}

const char* EndpointName(AttachEndpoint endpoint) {
  switch (endpoint) {
    case AttachEndpoint::kAuto: return "auto";
    case AttachEndpoint::kUnixSocket: return "unix-socket";
    case AttachEndpoint::kUnixSocketMux: return "unix-socket-mux";
    case AttachEndpoint::kSharedMemory: return "shared-memory";
  }
  return "?";
}

ExecutorReport RunExecutor(const ExecutorOptions& options) {
  ExecutorReport report;
  const auto fail = [&report](std::string error) {
    report.ok = false;
    report.error = std::move(error);
    return report;
  };
  if (options.attach.empty()) {
    return fail("no --attach endpoint given");
  }

  AttachEndpoint endpoint = options.endpoint;
  if (endpoint == AttachEndpoint::kAuto) {
    endpoint = DetectEndpoint(options.attach);
  }

  std::shared_ptr<runtime::InstructionStoreInterface> store;
  std::shared_ptr<transport::MuxInstructionStore> mux_client;
  switch (endpoint) {
    case AttachEndpoint::kUnixSocket:
      if (!WaitForSocket(options.attach, options.attach_timeout_ms)) {
        return fail("no server listening on socket " + options.attach);
      }
      store = transport::RemoteInstructionStore::OverUnixSocket(
          options.attach, options.attach_timeout_ms);
      break;
    case AttachEndpoint::kUnixSocketMux: {
      std::unique_ptr<transport::Stream> stream =
          transport::ConnectUnixSocket(options.attach,
                                       options.attach_timeout_ms);
      if (stream == nullptr) {
        return fail("no server listening on socket " + options.attach);
      }
      mux_client = std::make_shared<transport::MuxInstructionStore>(
          std::move(stream));
      store = mux_client;
      break;
    }
    case AttachEndpoint::kSharedMemory:
      if (!WaitForShmSegment(options.attach, options.attach_timeout_ms)) {
        return fail("shm segment " + options.attach + " never appeared");
      }
      store = transport::ShmInstructionStore::Attach(options.attach,
                                                     options.attach_timeout_ms);
      break;
    case AttachEndpoint::kAuto:
      return fail("unreachable endpoint kind");
  }
  report.heartbeat_supported = store->supports_heartbeat();

  // One publish-poll probe. Distinguishes "not published yet" (false) from
  // "the publisher is gone" (nullopt) — the store clients' own Contains
  // treats a dead peer as a fatal contract violation, which is right for a
  // mid-epoch exchange but wrong for a daemon waiting on the next plan.
  const auto probe = [&](int64_t iteration) -> std::optional<bool> {
    switch (endpoint) {
      case AttachEndpoint::kUnixSocket:
        return ProbeContainsOverSocket(options.attach, iteration,
                                       options.replica);
      case AttachEndpoint::kUnixSocketMux:
        // Poll over a throwaway one-shot connection, NOT the mux stream: a
        // Contains multiplexed onto the persistent stream would race server
        // teardown into the mux client's fatal no-reply contract. The
        // connection_ok early-out just skips the probe's retry dance once
        // the demux loop has already seen the stream die.
        if (!mux_client->connection_ok()) {
          return std::nullopt;
        }
        return ProbeContainsOverSocket(options.attach, iteration,
                                       options.replica);
      default:
        // Shm: the mapping stays valid in this process even after the owner
        // unlinks the name, so the segment cannot "go away" mid-run.
        return store->Contains(iteration, options.replica);
    }
  };

  SyntheticGroundTruth ground_truth;
  for (int64_t iteration = options.start_iteration;
       options.iterations < 0 ||
       iteration < options.start_iteration + options.iterations;
       ++iteration) {
    // Publish-before-fetch: poll until the publisher's push lands. Fetching
    // early would trip the store's intentional fatal contract. Backoff is
    // exponential up to a small cap: over the one-shot socket every probe is
    // a fresh connection plus a server handler thread, so an executor parked
    // behind a slow planner must not hammer the publisher at poll_interval.
    const auto poll_deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(options.idle_timeout_ms);
    bool available = false;
    bool publisher_gone = false;
    // Floor at 1 ms: a zero/negative interval would double to zero forever
    // and the "must not hammer" comment above would be a lie.
    int backoff_ms = std::max(1, options.poll_interval_ms);
    for (;;) {
      const std::optional<bool> published = probe(iteration);
      if (!published.has_value()) {
        publisher_gone = true;
        break;
      }
      if (*published) {
        available = true;
        break;
      }
      if (std::chrono::steady_clock::now() >= poll_deadline) {
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ms = std::min(backoff_ms * 2,
                            std::max(std::max(1, options.poll_interval_ms),
                                     64));
    }
    if (!available) {
      if (options.iterations < 0) {
        break;  // open-ended run: drained or the publisher shut down
      }
      return fail("iteration " + std::to_string(iteration) + " replica " +
                  std::to_string(options.replica) +
                  (publisher_gone ? ": publisher went away"
                                  : " never published"));
    }

    const auto t0 = std::chrono::steady_clock::now();
    const sim::ExecutionPlan plan =
        store->Fetch(iteration, options.replica);
    const double fetch_ms = MsSince(t0);

    sim::ClusterSim cluster(plan.num_devices(), &ground_truth);
    const sim::SimResult result = cluster.Run(plan);
    if (result.deadlocked || result.oom) {
      return fail("iteration " + std::to_string(iteration) + " " +
                  result.diagnostic);
    }
    if (options.slow_ms > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          options.slow_ms));
    }
    const double exec_wall_ms = MsSince(t0);

    if (options.heartbeat && report.heartbeat_supported) {
      const auto hb0 = std::chrono::steady_clock::now();
      if (store->Heartbeat(options.replica, iteration, exec_wall_ms)) {
        ++report.heartbeats_sent;
      }
      report.heartbeat_ms_total += MsSince(hb0);
    }

    ++report.iterations_run;
    for (const auto& device : plan.devices) {
      report.instructions_executed +=
          static_cast<int64_t>(device.instructions.size());
    }
    report.fetch_ms_total += fetch_ms;
    report.exec_wall_ms_total += exec_wall_ms;
    if (options.observer) {
      IterationOutcome outcome;
      outcome.iteration = iteration;
      outcome.plan = &plan;
      outcome.sim = &result;
      outcome.fetch_ms = fetch_ms;
      outcome.exec_wall_ms = exec_wall_ms;
      options.observer(outcome);
    }
  }
  report.ok = true;
  return report;
}

}  // namespace dynapipe::executor
