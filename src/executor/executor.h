// Standalone executor: the consumer half of a real multi-process deployment.
//
// DynaPipe's premise (§3) is a centralized, dataloader-side planner producing
// per-iteration execution plans that worker processes consume. Everything
// below the trainer already speaks that shape — serialized plans, store
// backends, a wire protocol — but until now the trainer hosted both ends in
// one process. RunExecutor is the other end for real: it attaches to a
// publisher's store by Unix-socket path (one-shot or multiplexed connection)
// or shared-memory segment name, fetches the plans published for its replica
// (fetch consumes — the publisher side of a multi-process run does not
// execute in-process), executes each on its own ClusterSim, and heartbeats
// iteration completion (replica / iteration / wall-ms) back over the
// transport so the publisher's HeartbeatMonitor can attribute stragglers.
// tools/dynapipe_executor.cc wraps this in a daemon binary; tests fork it
// directly to pin byte-identical plan delivery and straggler attribution
// across a process boundary.
//
// The executor deliberately owns no cost model: a plan embeds every shape and
// transfer size an executor needs (the paper's "no shape metadata exchanged
// at runtime", §6), so execution needs only a GroundTruth for durations — a
// deterministic synthetic one here, the real hardware in a deployment.
#ifndef DYNAPIPE_SRC_EXECUTOR_EXECUTOR_H_
#define DYNAPIPE_SRC_EXECUTOR_EXECUTOR_H_

#include <cstdint>
#include <functional>
#include <string>

#include "src/sim/cluster_sim.h"
#include "src/sim/instruction.h"

namespace dynapipe::executor {

// How to reach the trainer's store. kAuto infers from the attach string: a
// POSIX shm name is "/name" with no further slash, anything else is a socket
// path (which, being a filesystem path, virtually always has one).
enum class AttachEndpoint {
  kAuto,
  kUnixSocket,     // RemoteInstructionStore, one connection per request
  kUnixSocketMux,  // MuxInstructionStore, one persistent connection
  kSharedMemory,   // ShmInstructionStore::Attach, no wire at all
};

AttachEndpoint DetectEndpoint(const std::string& attach);
const char* EndpointName(AttachEndpoint endpoint);

// What one executed iteration looked like; streamed to the observer so tools
// can print progress and tests can verify plan bytes without re-fetching.
struct IterationOutcome {
  int64_t iteration = 0;
  const sim::ExecutionPlan* plan = nullptr;
  const sim::SimResult* sim = nullptr;
  double fetch_ms = 0.0;      // Contains-poll wait excluded; the fetch itself
  double exec_wall_ms = 0.0;  // fetch + simulate + artificial delay
};

struct ExecutorOptions {
  // Socket path or shm segment name, per `endpoint`.
  std::string attach;
  AttachEndpoint endpoint = AttachEndpoint::kAuto;
  // Which replica's plans to fetch.
  int32_t replica = 0;
  int64_t start_iteration = 0;
  // Number of iterations to run; < 0 runs until no new plan appears for
  // idle_timeout_ms (the daemon shape: drain the epoch, then exit).
  int64_t iterations = -1;
  // Artificial per-iteration delay, applied before the heartbeat — a
  // deliberately slowed replica for straggler-detection tests and demos.
  double slow_ms = 0.0;
  // Report iteration completion through the store's heartbeat channel when
  // the backend has one (supports_heartbeat); silently skipped otherwise.
  bool heartbeat = true;
  // Publish-before-fetch is the store contract, so the executor polls for
  // its plan rather than risking the fatal fetch-before-publish abort. This
  // is the initial poll interval; waits back off exponentially to a capped,
  // jittered sleep (the one-shot socket pays a connection + a server thread
  // per probe, so a daemon parked behind a slow planner must not hammer the
  // publisher — and a fleet of daemons must not hammer it in lockstep).
  // The poll probe is non-fatal: a vanished publisher reads as end-of-epoch
  // (open-ended runs) or an error report (counted runs), never an abort.
  int poll_interval_ms = 1;
  // How long to keep polling before concluding the trainer is gone (fatal
  // when `iterations` was explicit) or the epoch is over (clean exit when
  // running open-ended).
  int idle_timeout_ms = 10'000;
  // Connect/attach retry budget while the trainer process is still starting.
  // The poll probes' per-connect timeout derives from this (1% with a 10 ms
  // floor), so one knob scales the whole attach/poll patience.
  int attach_timeout_ms = 10'000;
  // Announce this replica's presence with kAttach/kDetach on the wire
  // endpoints, so the publisher's liveness machinery can tell a vanished
  // executor (unclean connection drop -> kDead) from a finished one (clean
  // detach). On by default; no-op for the shm endpoint (no server).
  bool announce_liveness = true;
  // Transport errors mid-run (a dropped mux stream, a failed one-shot
  // exchange) are retried with capped, jittered exponential backoff for this
  // many attempts before the publisher is declared gone. This is what makes
  // an injected connection drop or frame corruption a hiccup instead of an
  // end-of-epoch.
  int reconnect_attempts = 3;
  int reconnect_backoff_ms = 10;  // initial; doubles, capped at 500 ms
  // --- Elastic membership ---
  // Declare join intent on attach (kAttachCapJoin on the wire endpoints; a
  // plain announce on shm, where joining is intrinsic). The publisher's
  // MembershipCoordinator admits the replica and seeds it with stolen
  // backlog at spare iteration keys — a joiner therefore normally runs with
  // start_iteration at the publisher's spare base.
  bool join = false;
  // >= 0: after this many executed iterations, request a graceful drain
  // (kDrainRequest / the shm slot's drain word), wait for the publisher's
  // acknowledgement (by which point the unfetched backlog has been handed to
  // the survivors), then detach cleanly and exit. -1 never drains.
  int64_t drain_after = -1;
  // Per-iteration hook (nullable). The plan/sim pointers are valid only for
  // the duration of the call.
  std::function<void(const IterationOutcome&)> observer;
};

struct ExecutorReport {
  bool ok = false;
  std::string error;  // set when !ok
  bool heartbeat_supported = false;
  // The server declared this replica dead and refused further service
  // (kEvicted): its plans were re-published to survivors while it was
  // stalled or disconnected, so it stopped instead of double-running them.
  // An open-ended run treats eviction as a clean (ok) exit.
  bool evicted = false;
  // The drain_after handshake completed: the publisher acknowledged the
  // drain and this executor detached cleanly.
  bool drained = false;
  int64_t iterations_run = 0;
  int64_t instructions_executed = 0;
  int64_t heartbeats_sent = 0;
  // Successful reconnects after a mid-run transport error.
  int64_t reconnects = 0;
  double fetch_ms_total = 0.0;
  double exec_wall_ms_total = 0.0;
  double heartbeat_ms_total = 0.0;
};

// Attaches, drains, heartbeats, returns. A missing, slow, or cleanly
// departed publisher is never an abort: attach failure and a publisher that
// vanishes while we are *between* plans are `ok = false` reports (or, for an
// open-ended run, a clean end-of-epoch). Like every store client, it does
// abort on a violated store contract — corrupt plan bytes, a key consumed
// out from under us, or a peer torn away mid-exchange — because a corrupted
// or half-delivered plan must not execute.
ExecutorReport RunExecutor(const ExecutorOptions& options);

}  // namespace dynapipe::executor

#endif  // DYNAPIPE_SRC_EXECUTOR_EXECUTOR_H_
