#include "src/model/model_config.h"

#include <vector>

#include "src/common/check.h"

namespace dynapipe::model {

int32_t ModelConfig::total_layers() const {
  return arch == ModelArch::kT5 ? 2 * num_layers : num_layers;
}

int64_t ModelConfig::params_per_encoder_layer() const {
  const int64_t h = hidden_dim;
  const int64_t p = projection_dim();
  const int64_t f = ffn_dim;
  // Self-attention: Q,K,V (h->p each) + output (p->h); FFN: h->f + f->h.
  // Biases and layernorm gains are negligible at these scales and omitted.
  return 4 * h * p + 2 * h * f;
}

int64_t ModelConfig::params_per_decoder_layer() const {
  if (arch == ModelArch::kGpt) {
    return params_per_encoder_layer();
  }
  // T5 decoder layer adds a cross-attention block (another 4*h*p).
  return params_per_encoder_layer() + 4 * int64_t{hidden_dim} * projection_dim();
}

int64_t ModelConfig::embedding_params() const {
  return int64_t{vocab_size} * hidden_dim;
}

int64_t ModelConfig::total_params() const {
  if (arch == ModelArch::kGpt) {
    return num_layers * params_per_decoder_layer() + embedding_params();
  }
  return num_layers * (params_per_encoder_layer() + params_per_decoder_layer()) +
         embedding_params();
}

double ModelConfig::total_params_billions() const {
  return static_cast<double>(total_params()) / 1e9;
}

namespace {

ModelConfig MakeGpt(std::string name, int32_t layers, int32_t hidden, int32_t heads,
                    int32_t ffn) {
  ModelConfig c;
  c.arch = ModelArch::kGpt;
  c.name = std::move(name);
  c.num_layers = layers;
  c.hidden_dim = hidden;
  c.num_heads = heads;
  c.kv_channels = hidden / heads;
  c.ffn_dim = ffn;
  return c;
}

ModelConfig MakeT5(std::string name, int32_t layers) {
  // T5 scaling in the paper keeps T5-11B's width (model dim 1024, 128 heads of 128
  // kv channels, FFN 65536) and scales the layer count: 12/24/48/96.
  ModelConfig c;
  c.arch = ModelArch::kT5;
  c.name = std::move(name);
  c.num_layers = layers;
  c.hidden_dim = 1024;
  c.num_heads = 128;
  c.kv_channels = 128;
  c.ffn_dim = 65'536;
  return c;
}

}  // namespace

// Table 1: GPT layers 16/32/40/16, dims 4096/4096/5140/12288, heads 32/32/40/96,
// kv channels 128, FFN 16384/16384/20560/49152.
ModelConfig ModelConfig::Gpt3_35B() { return MakeGpt("GPT-3.35B", 16, 4096, 32, 16'384); }
ModelConfig ModelConfig::Gpt6_7B() { return MakeGpt("GPT-6.7B", 32, 4096, 32, 16'384); }
ModelConfig ModelConfig::Gpt13B() { return MakeGpt("GPT-13B", 40, 5140, 40, 20'560); }
ModelConfig ModelConfig::Gpt29B() { return MakeGpt("GPT-29B", 16, 12'288, 96, 49'152); }

ModelConfig ModelConfig::T5_5_5B() { return MakeT5("T5-5.5B", 12); }
ModelConfig ModelConfig::T5_11B() { return MakeT5("T5-11B", 24); }
ModelConfig ModelConfig::T5_22B() { return MakeT5("T5-22B", 48); }
ModelConfig ModelConfig::T5_44B() { return MakeT5("T5-44B", 96); }

ModelConfig ModelConfig::ForCluster(ModelArch arch, int32_t num_gpus) {
  if (arch == ModelArch::kGpt) {
    switch (num_gpus) {
      case 4:
        return Gpt3_35B();
      case 8:
        return Gpt6_7B();
      case 16:
        return Gpt13B();
      case 32:
        return Gpt29B();
      default:
        break;
    }
  } else {
    switch (num_gpus) {
      case 4:
        return T5_5_5B();
      case 8:
        return T5_11B();
      case 16:
        return T5_22B();
      case 32:
        return T5_44B();
      default:
        break;
    }
  }
  DYNAPIPE_CHECK_MSG(false, "no Table 1 model for this cluster size");
}

std::string ParallelConfig::ToString() const {
  return "dp" + std::to_string(dp) + "/tp" + std::to_string(tp) + "/pp" +
         std::to_string(pp);
}

std::vector<ParallelConfig> EnumerateParallelConfigs(int32_t num_gpus,
                                                     int32_t gpus_per_node,
                                                     int32_t max_pp) {
  DYNAPIPE_CHECK(num_gpus >= 1);
  std::vector<ParallelConfig> configs;
  for (int32_t tp = 1; tp <= num_gpus; tp *= 2) {
    if (tp > gpus_per_node) {
      break;
    }
    for (int32_t pp = 1; tp * pp <= num_gpus; pp *= 2) {
      if (pp > max_pp) {
        break;
      }
      if (num_gpus % (tp * pp) != 0) {
        continue;
      }
      const int32_t dp = num_gpus / (tp * pp);
      // Only power-of-two dp (always true when num_gpus is a power of two).
      if ((dp & (dp - 1)) != 0) {
        continue;
      }
      configs.push_back(ParallelConfig{dp, tp, pp});
    }
  }
  return configs;
}

}  // namespace dynapipe::model
