// Simulated accelerator and interconnect parameters.
//
// Defaults approximate one EC2 p4d node: A100-40GB GPUs (312 TFLOPS fp16 peak),
// NVSwitch within a node, EFA across nodes. The utilization curve makes small
// matmuls slow (launch-bound) and large ones approach a realistic MFU, which is what
// produces the paper's "computation efficiency improves with micro-batch size" effect
// and the super-linear time growth of Fig. 3 together with the quadratic attention
// term.
#ifndef DYNAPIPE_SRC_MODEL_HARDWARE_SPEC_H_
#define DYNAPIPE_SRC_MODEL_HARDWARE_SPEC_H_

#include <cstdint>

namespace dynapipe::model {

struct HardwareSpec {
  // Compute.
  double peak_tflops = 312.0;       // fp16 tensor-core peak
  double max_utilization = 0.55;    // achievable MFU at saturation
  // Tokens/op at which utilization reaches half of max. LLM-sized GEMMs saturate
  // tensor cores with a few hundred rows, so the knee sits low; pushing it higher
  // overweights batching and understates the cost of packing's long sequences.
  double util_half_tokens = 256.0;
  // Relative efficiency of the O(s^2) attention interior (QK^T, softmax/mask/
  // dropout, A*V) versus dense GEMMs. Pre-FlashAttention stacks run the softmax/
  // mask/dropout passes as separate memory-bound kernels (fp32 for stability), so
  // per s^2 unit they move ~20-30 bytes against ~4*kv_channels tensor-core FLOPs —
  // an effective ~10% of GEMM throughput. This is what makes packing's quadratic
  // term so expensive on real hardware (Fig. 3/4).
  double attention_efficiency = 0.10;
  double kernel_overhead_us = 25.0; // fixed per-layer per-pass launch overhead

  // Memory.
  double device_memory_mb = 40.0 * 1024.0;  // A100 40GB
  // Fraction reserved for workspace/fragmentation slack (cuBLAS workspaces, NCCL
  // buffers, allocator slack); activations must fit in what remains.
  double memory_reserved_fraction = 0.08;

  // Interconnect.
  double intra_node_bw_gbs = 250.0;  // NVSwitch effective GB/s per GPU pair
  double inter_node_bw_gbs = 20.0;   // EFA effective GB/s per GPU pair
  double p2p_latency_us = 12.0;
  double allreduce_latency_us = 25.0;
  int32_t gpus_per_node = 8;

  double usable_memory_mb() const {
    return device_memory_mb * (1.0 - memory_reserved_fraction);
  }
};

}  // namespace dynapipe::model

#endif  // DYNAPIPE_SRC_MODEL_HARDWARE_SPEC_H_
