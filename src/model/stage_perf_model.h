// Per-pipeline-stage performance model: aggregates LayerPerfModel over the layers a
// stage owns, plus weight/optimizer memory and the communication volumes the stage
// exchanges with its neighbours. This is what the simulator treats as ground truth
// and what the ProfileRunner samples to build the planner's cost model.
#ifndef DYNAPIPE_SRC_MODEL_STAGE_PERF_MODEL_H_
#define DYNAPIPE_SRC_MODEL_STAGE_PERF_MODEL_H_

#include <vector>

#include "src/model/hardware_spec.h"
#include "src/model/layer_perf_model.h"
#include "src/model/model_config.h"
#include "src/model/shapes.h"
#include "src/model/stage_partition.h"

namespace dynapipe::model {

class StagePerfModel {
 public:
  StagePerfModel(const ModelConfig& config, const HardwareSpec& hw,
                 const StageLayout& layout, int32_t tp);

  // Forward/backward execution time of one micro-batch on this stage (ms).
  double FwdMs(const MicroBatchShape& shape) const;
  double BwdMs(const MicroBatchShape& shape, RecomputeMode mode) const;

  // Activation memory this stage retains for one in-flight micro-batch (MB).
  double ActivationMb(const MicroBatchShape& shape, RecomputeMode mode) const;

  // Static memory: fp16 weights + fp16 grads + ZeRO-1-sharded Adam states (MB).
  double StaticMemoryMb(int32_t dp) const;

  // Bytes this stage sends to the next stage for one micro-batch's forward pass.
  // For T5, decoder stages also forward the encoder output (cross-attention input),
  // so the boundary and decoder-side volumes include both tensors. Gradient traffic
  // in the backward pass has the same volume in the reverse direction.
  double OutputActivationBytes(const MicroBatchShape& shape) const;

  const StageLayout& layout() const { return layout_; }
  const LayerPerfModel& layer_model() const { return layer_model_; }

 private:
  ModelConfig config_;
  HardwareSpec hw_;
  StageLayout layout_;
  int32_t tp_;
  LayerPerfModel layer_model_;
};

// Builds the per-stage models for a full pipeline.
std::vector<StagePerfModel> BuildStageModels(const ModelConfig& config,
                                             const HardwareSpec& hw, int32_t pp,
                                             int32_t tp);

// Per-iteration data-parallel gradient allreduce time for one stage's parameters
// (ring allreduce over dp replicas; uses inter-node bandwidth, the conservative
// case). Returns 0 for dp == 1.
double DpGradSyncMs(const ModelConfig& config, const HardwareSpec& hw,
                    const StageLayout& layout, int32_t tp, int32_t dp);

}  // namespace dynapipe::model

#endif  // DYNAPIPE_SRC_MODEL_STAGE_PERF_MODEL_H_
