// Pipeline stage partitioning.
//
// Layers are split as evenly as possible across pp stages. For T5 the encoder stack
// precedes the decoder stack in pipeline order (encoder layers fill the early stages,
// decoder layers the late ones), so a stage may hold encoder layers, decoder layers,
// or both at the boundary. The first stage additionally owns the input embedding and
// the last stage the LM head (tied embeddings still cost the logit matmul).
#ifndef DYNAPIPE_SRC_MODEL_STAGE_PARTITION_H_
#define DYNAPIPE_SRC_MODEL_STAGE_PARTITION_H_

#include <cstdint>
#include <vector>

#include "src/model/model_config.h"

namespace dynapipe::model {

struct StageLayout {
  int32_t stage_index = 0;
  int32_t num_encoder_layers = 0;  // 0 for GPT
  int32_t num_decoder_layers = 0;  // GPT layers count as decoder layers
  bool has_embedding = false;      // first stage
  bool has_lm_head = false;        // last stage

  int32_t num_layers() const { return num_encoder_layers + num_decoder_layers; }
};

// Partition `config` into `pp` stages. Requires pp <= total_layers().
std::vector<StageLayout> PartitionStages(const ModelConfig& config, int32_t pp);

}  // namespace dynapipe::model

#endif  // DYNAPIPE_SRC_MODEL_STAGE_PARTITION_H_
