// Micro-batch shape: the padded tensor dimensions a micro-batch occupies.
//
// Every sample in a micro-batch is padded to the micro-batch's (input_len,
// target_len); the planner's entire job is choosing groupings for which that padding
// is small while execution stays efficient.
#ifndef DYNAPIPE_SRC_MODEL_SHAPES_H_
#define DYNAPIPE_SRC_MODEL_SHAPES_H_

#include <cstdint>
#include <string>

namespace dynapipe::model {

struct MicroBatchShape {
  int32_t num_samples = 0;  // micro-batch size (batch dimension)
  int32_t input_len = 0;    // padded encoder (or full, for GPT) sequence length
  int32_t target_len = 0;   // padded decoder sequence length (0 for GPT)

  int64_t padded_tokens() const {
    return int64_t{num_samples} * (int64_t{input_len} + int64_t{target_len});
  }
  bool operator==(const MicroBatchShape&) const = default;
  std::string ToString() const {
    return "(" + std::to_string(num_samples) + ", " + std::to_string(input_len) +
           ", " + std::to_string(target_len) + ")";
  }
};

// How activations are (re)computed in the backward pass. Matches the recomputation
// schemes the paper's dynamic recomputation chooses among (§7):
//   kNone      — store everything, cheapest compute, highest memory;
//   kSelective — recompute the O(s^2) attention interior (Megatron "selective");
//   kFull      — store only layer inputs, replay the forward (Megatron "full").
enum class RecomputeMode { kNone, kSelective, kFull };

inline const char* RecomputeModeName(RecomputeMode m) {
  switch (m) {
    case RecomputeMode::kNone:
      return "none";
    case RecomputeMode::kSelective:
      return "selective";
    case RecomputeMode::kFull:
      return "full";
  }
  return "?";
}

}  // namespace dynapipe::model

#endif  // DYNAPIPE_SRC_MODEL_SHAPES_H_
