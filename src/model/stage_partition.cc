#include "src/model/stage_partition.h"

#include "src/common/check.h"

namespace dynapipe::model {

std::vector<StageLayout> PartitionStages(const ModelConfig& config, int32_t pp) {
  DYNAPIPE_CHECK(pp >= 1);
  const int32_t total = config.total_layers();
  DYNAPIPE_CHECK_MSG(pp <= total, "more stages than layers");

  // Evenly spread `total` layers over `pp` stages: the first (total % pp) stages get
  // one extra layer, matching Megatron-LM's uniform partitioner.
  std::vector<StageLayout> stages(static_cast<size_t>(pp));
  const int32_t base = total / pp;
  const int32_t extra = total % pp;
  const int32_t encoder_total =
      config.arch == ModelArch::kT5 ? config.num_layers : 0;

  int32_t consumed = 0;
  for (int32_t s = 0; s < pp; ++s) {
    StageLayout& st = stages[static_cast<size_t>(s)];
    st.stage_index = s;
    const int32_t count = base + (s < extra ? 1 : 0);
    // Of this stage's layers, how many fall in the encoder range [0, encoder_total)?
    const int32_t enc_here =
        std::max(0, std::min(consumed + count, encoder_total) - consumed);
    st.num_encoder_layers = enc_here;
    st.num_decoder_layers = count - enc_here;
    st.has_embedding = (s == 0);
    st.has_lm_head = (s == pp - 1);
    consumed += count;
  }
  DYNAPIPE_CHECK(consumed == total);
  return stages;
}

}  // namespace dynapipe::model
