#include "src/model/stage_perf_model.h"

#include "src/common/check.h"

namespace dynapipe::model {
namespace {

constexpr double kBytesPerValue = 2.0;  // fp16
constexpr double kMb = 1024.0 * 1024.0;

}  // namespace

StagePerfModel::StagePerfModel(const ModelConfig& config, const HardwareSpec& hw,
                               const StageLayout& layout, int32_t tp)
    : config_(config), hw_(hw), layout_(layout), tp_(tp),
      layer_model_(config, hw, tp) {}

double StagePerfModel::FwdMs(const MicroBatchShape& shape) const {
  const int32_t b = shape.num_samples;
  DYNAPIPE_CHECK(b > 0);
  double ms = 0.0;
  if (layout_.num_encoder_layers > 0) {
    ms += layout_.num_encoder_layers *
          layer_model_.EncoderLayerFwdMs(b, shape.input_len);
  }
  if (layout_.num_decoder_layers > 0) {
    // GPT runs its layers over the full (input) sequence; T5 decoder layers run over
    // the target sequence with cross-attention to the encoder output.
    const int32_t s_dec =
        config_.arch == ModelArch::kGpt ? shape.input_len : shape.target_len;
    ms += layout_.num_decoder_layers *
          layer_model_.DecoderLayerFwdMs(b, s_dec, shape.input_len);
  }
  if (layout_.has_lm_head) {
    const int32_t s_out =
        config_.arch == ModelArch::kGpt ? shape.input_len : shape.target_len;
    ms += layer_model_.LmHeadFwdMs(b, s_out);
  }
  return ms;
}

double StagePerfModel::BwdMs(const MicroBatchShape& shape, RecomputeMode mode) const {
  const int32_t b = shape.num_samples;
  DYNAPIPE_CHECK(b > 0);
  double ms = 0.0;
  if (layout_.num_encoder_layers > 0) {
    ms += layout_.num_encoder_layers *
          layer_model_.EncoderLayerBwdMs(b, shape.input_len, mode);
  }
  if (layout_.num_decoder_layers > 0) {
    const int32_t s_dec =
        config_.arch == ModelArch::kGpt ? shape.input_len : shape.target_len;
    ms += layout_.num_decoder_layers *
          layer_model_.DecoderLayerBwdMs(b, s_dec, shape.input_len, mode);
  }
  if (layout_.has_lm_head) {
    const int32_t s_out =
        config_.arch == ModelArch::kGpt ? shape.input_len : shape.target_len;
    ms += 2.0 * layer_model_.LmHeadFwdMs(b, s_out);
  }
  return ms;
}

double StagePerfModel::ActivationMb(const MicroBatchShape& shape,
                                    RecomputeMode mode) const {
  const int32_t b = shape.num_samples;
  double mb = 0.0;
  if (layout_.num_encoder_layers > 0) {
    mb += layout_.num_encoder_layers *
          layer_model_.EncoderLayerActivationMb(b, shape.input_len, mode);
  }
  if (layout_.num_decoder_layers > 0) {
    const int32_t s_dec =
        config_.arch == ModelArch::kGpt ? shape.input_len : shape.target_len;
    mb += layout_.num_decoder_layers *
          layer_model_.DecoderLayerActivationMb(b, s_dec, shape.input_len, mode);
  }
  return mb;
}

double StagePerfModel::StaticMemoryMb(int32_t dp) const {
  DYNAPIPE_CHECK(dp >= 1);
  double params = 0.0;
  params += static_cast<double>(layout_.num_encoder_layers) *
            static_cast<double>(config_.params_per_encoder_layer());
  params += static_cast<double>(layout_.num_decoder_layers) *
            static_cast<double>(config_.params_per_decoder_layer());
  if (layout_.has_embedding || layout_.has_lm_head) {
    params += static_cast<double>(config_.embedding_params());
  }
  params /= tp_;
  // Mixed-precision training: 2B fp16 weights + 2B fp16 grads resident; Adam fp32
  // master copy + two moments = 12B/param sharded across dp by ZeRO-1.
  const double bytes = params * (2.0 + 2.0 + 12.0 / dp);
  return bytes / kMb;
}

double StagePerfModel::OutputActivationBytes(const MicroBatchShape& shape) const {
  if (layout_.has_lm_head) {
    return 0.0;  // last stage sends nothing forward
  }
  const double b = shape.num_samples;
  const double h = static_cast<double>(config_.hidden_dim);
  if (config_.arch == ModelArch::kGpt) {
    return b * shape.input_len * h * kBytesPerValue;
  }
  // T5: a stage whose last layer is an encoder layer emits the running encoder
  // hidden states; once decoding has started, the boundary carries both the decoder
  // hidden states and the (pass-through) encoder output for cross-attention.
  if (layout_.num_decoder_layers == 0) {
    return b * shape.input_len * h * kBytesPerValue;
  }
  return b * (static_cast<double>(shape.target_len) + shape.input_len) * h *
         kBytesPerValue;
}

std::vector<StagePerfModel> BuildStageModels(const ModelConfig& config,
                                             const HardwareSpec& hw, int32_t pp,
                                             int32_t tp) {
  std::vector<StageLayout> layouts = PartitionStages(config, pp);
  std::vector<StagePerfModel> models;
  models.reserve(layouts.size());
  for (const auto& layout : layouts) {
    models.emplace_back(config, hw, layout, tp);
  }
  return models;
}

double DpGradSyncMs(const ModelConfig& config, const HardwareSpec& hw,
                    const StageLayout& layout, int32_t tp, int32_t dp) {
  if (dp <= 1) {
    return 0.0;
  }
  double params = 0.0;
  params += static_cast<double>(layout.num_encoder_layers) *
            static_cast<double>(config.params_per_encoder_layer());
  params += static_cast<double>(layout.num_decoder_layers) *
            static_cast<double>(config.params_per_decoder_layer());
  if (layout.has_embedding || layout.has_lm_head) {
    params += static_cast<double>(config.embedding_params());
  }
  params /= tp;
  const double grad_bytes = params * kBytesPerValue;
  const double ring_factor = 2.0 * (dp - 1) / dp;
  const double gb = grad_bytes * ring_factor / 1e9;
  return hw.allreduce_latency_us / 1e3 + gb / hw.inter_node_bw_gbs * 1e3;
}

}  // namespace dynapipe::model
