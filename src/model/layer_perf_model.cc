#include "src/model/layer_perf_model.h"

#include <cmath>

#include "src/common/check.h"

namespace dynapipe::model {
namespace {

constexpr double kBytesPerValue = 2.0;  // fp16
constexpr double kMb = 1024.0 * 1024.0;

}  // namespace

LayerPerfModel::LayerPerfModel(const ModelConfig& config, const HardwareSpec& hw,
                               int32_t tp)
    : config_(config), hw_(hw), tp_(tp) {
  DYNAPIPE_CHECK(tp >= 1);
  DYNAPIPE_CHECK_MSG(config.num_heads % tp == 0 || tp <= config.num_heads,
                     "tensor parallel degree must divide attention heads");
}

double LayerPerfModel::EncoderLayerFwdFlops(int32_t b, int32_t s) const {
  const double h = config_.hidden_dim;
  const double p = static_cast<double>(config_.projection_dim());
  const double f = config_.ffn_dim;
  const double bd = b;
  const double sd = s;
  const double attn = 8.0 * bd * sd * h * p + 4.0 * bd * sd * sd * p;
  const double ffn = 4.0 * bd * sd * h * f;
  return attn + ffn;
}

double LayerPerfModel::DecoderLayerFwdFlops(int32_t b, int32_t s_dec,
                                            int32_t s_enc) const {
  const double h = config_.hidden_dim;
  const double p = static_cast<double>(config_.projection_dim());
  const double f = config_.ffn_dim;
  const double bd = b;
  const double sd = s_dec;
  const double se = s_enc;
  const double self_attn = 8.0 * bd * sd * h * p + 4.0 * bd * sd * sd * p;
  const double ffn = 4.0 * bd * sd * h * f;
  if (config_.arch == ModelArch::kGpt) {
    return self_attn + ffn;
  }
  // T5 decoder layer: + cross-attention (Q from decoder, K/V from encoder output).
  const double cross =
      4.0 * bd * sd * h * p + 4.0 * bd * se * h * p + 4.0 * bd * sd * se * p;
  return self_attn + cross + ffn;
}

double LayerPerfModel::LmHeadFwdFlops(int32_t b, int32_t s) const {
  return 2.0 * static_cast<double>(b) * s * config_.hidden_dim * config_.vocab_size;
}

double LayerPerfModel::FlopsToMs(double flops, double tokens) const {
  return PassTimeMs(flops, 0.0, tokens);
}

double LayerPerfModel::PassTimeMs(double linear_flops, double quad_flops,
                                  double tokens) const {
  // Tensor parallelism narrows every GEMM by tp, so saturating the device takes
  // proportionally more rows — without this, grid search always degenerates to
  // tp-only parallelism.
  const double half_tokens = hw_.util_half_tokens * tp_;
  const double util = hw_.max_utilization * tokens / (tokens + half_tokens);
  const double peak_flops_per_ms = hw_.peak_tflops * 1e12 / 1e3;
  // The O(s^2) attention interior (QK^T, softmax, A*V) is bandwidth-bound and runs
  // at a fraction of dense-GEMM throughput (hw_.attention_efficiency) — the reason
  // packing's long sequences cost more than their FLOP count suggests.
  return hw_.kernel_overhead_us / 1e3 +
         linear_flops / (peak_flops_per_ms * util) +
         quad_flops / (peak_flops_per_ms * util * hw_.attention_efficiency);
}

double LayerPerfModel::EncoderQuadFlops(int32_t b, int32_t s) const {
  return 4.0 * static_cast<double>(b) * s * s *
         static_cast<double>(config_.projection_dim());
}

double LayerPerfModel::DecoderQuadFlops(int32_t b, int32_t s_dec,
                                        int32_t s_enc) const {
  const double p = static_cast<double>(config_.projection_dim());
  double quad = 4.0 * static_cast<double>(b) * s_dec * s_dec * p;
  if (config_.arch == ModelArch::kT5) {
    quad += 4.0 * static_cast<double>(b) * s_dec * s_enc * p;  // cross-attention
  }
  return quad;
}

double LayerPerfModel::TpAllreduceMs(int32_t b, int32_t s) const {
  if (tp_ <= 1) {
    return 0.0;
  }
  // Ring allreduce of the (b, s, h) activation among tp GPUs, twice per layer pass
  // (after attention and after FFN), NVSwitch bandwidth (tp is intra-node).
  const double bytes =
      static_cast<double>(b) * s * config_.hidden_dim * kBytesPerValue;
  const double ring_factor = 2.0 * (tp_ - 1) / tp_;
  const double gb = bytes * ring_factor / 1e9;
  const double per_allreduce_ms =
      hw_.allreduce_latency_us / 1e3 + gb / hw_.intra_node_bw_gbs * 1e3;
  return 2.0 * per_allreduce_ms;
}

double LayerPerfModel::EncoderLayerFwdMs(int32_t b, int32_t s) const {
  const double tokens = static_cast<double>(b) * s;
  const double quad = EncoderQuadFlops(b, s);
  const double linear = EncoderLayerFwdFlops(b, s) - quad;
  return PassTimeMs(linear / tp_, quad / tp_, tokens) + TpAllreduceMs(b, s);
}

double LayerPerfModel::DecoderLayerFwdMs(int32_t b, int32_t s_dec,
                                         int32_t s_enc) const {
  // Cross-attention kernels touch both streams, so the utilization operating point
  // covers decoder and encoder tokens. (Also keeps time monotone in either length,
  // which the micro-batch DP exploits.)
  const double tokens =
      static_cast<double>(b) *
      (s_dec + (config_.arch == ModelArch::kT5 ? s_enc : 0));
  const double quad = DecoderQuadFlops(b, s_dec, s_enc);
  const double linear = DecoderLayerFwdFlops(b, s_dec, s_enc) - quad;
  return PassTimeMs(linear / tp_, quad / tp_, tokens) + TpAllreduceMs(b, s_dec);
}

double LayerPerfModel::LmHeadFwdMs(int32_t b, int32_t s) const {
  const double tokens = static_cast<double>(b) * s;
  return FlopsToMs(LmHeadFwdFlops(b, s) / tp_, tokens);
}

namespace {

// Backward compute is ~2x forward (grads w.r.t. both inputs and weights); recompute
// replays forward work before the backward proper: kSelective replays only the
// quadratic attention interior, kFull replays everything.
double BwdLinearFactor(RecomputeMode mode) {
  return mode == RecomputeMode::kFull ? 3.0 : 2.0;
}

double BwdQuadFactor(RecomputeMode mode) {
  return mode == RecomputeMode::kNone ? 2.0 : 3.0;
}

}  // namespace

double LayerPerfModel::EncoderLayerBwdMs(int32_t b, int32_t s,
                                         RecomputeMode mode) const {
  const double quad = EncoderQuadFlops(b, s);
  const double linear = EncoderLayerFwdFlops(b, s) - quad;
  const double tokens = static_cast<double>(b) * s;
  // Backward runs the same allreduce pattern on gradients.
  return PassTimeMs(linear * BwdLinearFactor(mode) / tp_,
                    quad * BwdQuadFactor(mode) / tp_, tokens) +
         TpAllreduceMs(b, s);
}

double LayerPerfModel::DecoderLayerBwdMs(int32_t b, int32_t s_dec, int32_t s_enc,
                                         RecomputeMode mode) const {
  const double quad = DecoderQuadFlops(b, s_dec, s_enc);
  const double linear = DecoderLayerFwdFlops(b, s_dec, s_enc) - quad;
  const double tokens =
      static_cast<double>(b) *
      (s_dec + (config_.arch == ModelArch::kT5 ? s_enc : 0));
  return PassTimeMs(linear * BwdLinearFactor(mode) / tp_,
                    quad * BwdQuadFactor(mode) / tp_, tokens) +
         TpAllreduceMs(b, s_dec);
}

double LayerPerfModel::EncoderLayerActivationMb(int32_t b, int32_t s,
                                                RecomputeMode mode) const {
  const double h = config_.hidden_dim;
  const double p = static_cast<double>(config_.projection_dim()) / tp_;
  const double f = static_cast<double>(config_.ffn_dim) / tp_;
  const double a = static_cast<double>(config_.num_heads) / tp_;
  const double bs = static_cast<double>(b) * s;
  switch (mode) {
    case RecomputeMode::kFull:
      // Only the layer input survives; everything else is recomputed.
      return bs * h * kBytesPerValue / kMb;
    case RecomputeMode::kSelective: {
      // Linear activations stay (input, Q/K/V, attn out, FFN hidden); the O(s^2)
      // score matrix is recomputed.
      const double linear = bs * (2.0 * h + 3.0 * p + f) * kBytesPerValue;
      return linear / kMb;
    }
    case RecomputeMode::kNone: {
      const double linear = bs * (2.0 * h + 3.0 * p + f) * kBytesPerValue;
      const double scores = static_cast<double>(b) * a * s * s * kBytesPerValue;
      return (linear + scores) / kMb;
    }
  }
  return 0.0;
}

double LayerPerfModel::DecoderLayerActivationMb(int32_t b, int32_t s_dec,
                                                int32_t s_enc,
                                                RecomputeMode mode) const {
  const double enc_like = EncoderLayerActivationMb(b, s_dec, mode);
  if (config_.arch == ModelArch::kGpt) {
    return enc_like;
  }
  // Cross-attention adds K/V over the encoder sequence and (mode-dependent) the
  // s_dec x s_enc score matrix.
  const double p = static_cast<double>(config_.projection_dim()) / tp_;
  const double a = static_cast<double>(config_.num_heads) / tp_;
  double extra = 0.0;
  if (mode != RecomputeMode::kFull) {
    extra += static_cast<double>(b) * s_enc * 2.0 * p * kBytesPerValue;
    if (mode == RecomputeMode::kNone) {
      extra += static_cast<double>(b) * a * s_dec * s_enc * kBytesPerValue;
    }
  }
  return enc_like + extra / kMb;
}

}  // namespace dynapipe::model
