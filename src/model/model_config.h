// Model and parallelism configuration.
//
// Model shapes follow Table 1 of the paper exactly: GPT (decoder-only) scaled per the
// GPT-3 paper to 3.35/6.7/13/29B for 4/8/16/32 GPUs, and T5 (encoder–decoder) scaled
// in depth to 5.5/11/22/44B. "num_layers" for T5 counts layers in *each* of the
// encoder and decoder, as in the paper.
#ifndef DYNAPIPE_SRC_MODEL_MODEL_CONFIG_H_
#define DYNAPIPE_SRC_MODEL_MODEL_CONFIG_H_

#include <cstdint>
#include <string>
#include <vector>

namespace dynapipe::model {

enum class ModelArch {
  kGpt,  // decoder-only; samples have input_len only
  kT5,   // encoder-decoder; samples have (input_len, target_len)
};

struct ModelConfig {
  ModelArch arch = ModelArch::kGpt;
  std::string name;
  int32_t num_layers = 0;    // per stack (T5: encoder depth == decoder depth)
  int32_t hidden_dim = 0;    // model dimension h
  int32_t num_heads = 0;
  int32_t kv_channels = 0;   // per-head dimension; projection dim p = heads * kv
  int32_t ffn_dim = 0;
  int32_t vocab_size = 50'304;

  // Attention projection width p = num_heads * kv_channels. For GPT this equals
  // hidden_dim; T5-11B famously uses p = 16384 with h = 1024.
  int64_t projection_dim() const { return int64_t{num_heads} * kv_channels; }

  // Total transformer layers in the model (T5: encoder + decoder stacks).
  int32_t total_layers() const;

  // Parameter counts (used to validate against Table 1 and to size optimizer state).
  int64_t params_per_encoder_layer() const;
  int64_t params_per_decoder_layer() const;  // includes cross-attention for T5
  int64_t embedding_params() const;
  int64_t total_params() const;
  double total_params_billions() const;

  // Table 1 rows.
  static ModelConfig Gpt3_35B();  // 4 GPUs
  static ModelConfig Gpt6_7B();   // 8 GPUs
  static ModelConfig Gpt13B();    // 16 GPUs
  static ModelConfig Gpt29B();    // 32 GPUs
  static ModelConfig T5_5_5B();   // 4 GPUs
  static ModelConfig T5_11B();    // 8 GPUs
  static ModelConfig T5_22B();    // 16 GPUs
  static ModelConfig T5_44B();    // 32 GPUs

  // The Table 1 model for a given architecture and GPU count (4/8/16/32).
  static ModelConfig ForCluster(ModelArch arch, int32_t num_gpus);
};

// 3D parallelism degrees. num_gpus = dp * tp * pp.
struct ParallelConfig {
  int32_t dp = 1;  // data parallel replicas
  int32_t tp = 1;  // tensor parallel degree (intra-node only, like the paper)
  int32_t pp = 1;  // pipeline stages

  int32_t num_gpus() const { return dp * tp * pp; }
  std::string ToString() const;
  bool operator==(const ParallelConfig&) const = default;
};

// All (dp, tp, pp) combinations with power-of-two degrees that multiply to num_gpus,
// with tp capped at gpus_per_node (the paper limits tensor parallelism to intra-node)
// and pp capped at the number of pipeline-partitionable layers.
std::vector<ParallelConfig> EnumerateParallelConfigs(int32_t num_gpus,
                                                     int32_t gpus_per_node,
                                                     int32_t max_pp);

}  // namespace dynapipe::model

#endif  // DYNAPIPE_SRC_MODEL_MODEL_CONFIG_H_
