// Analytic per-layer performance model — the repo's stand-in for real GPU kernels.
//
// FLOP counts use the standard transformer formulas (2 FLOPs per multiply-add):
//   self-attention:   8*b*s*h*p + 4*b*s^2*p          (QKV/out projections + scores/context)
//   cross-attention:  4*b*sd*h*p + 4*b*se*h*p + 4*b*sd*se*p
//   feed-forward:     4*b*s*h*f
// where h = hidden_dim, p = heads*kv_channels, f = ffn_dim. Time is
//   kernel_overhead + flops / (peak * utilization(tokens))
// with utilization(t) = max_util * t / (t + half_tokens) — a saturating curve, so
// small micro-batches are launch/bandwidth-bound and large ones compute-bound. The
// quadratic s^2 terms give Fig. 3's super-linear growth. Tensor parallelism divides
// FLOPs by tp and adds two allreduces of the layer output per pass.
//
// Activation memory distinguishes the linear b*s terms from the quadratic b*a*s^2
// attention-score matrices; the recompute mode decides which are retained between
// forward and backward (see RecomputeMode).
//
// The planner's CostModel never calls these formulas directly — it profiles them on a
// power-of-two grid and interpolates, exactly like the paper profiles real kernels.
#ifndef DYNAPIPE_SRC_MODEL_LAYER_PERF_MODEL_H_
#define DYNAPIPE_SRC_MODEL_LAYER_PERF_MODEL_H_

#include "src/model/hardware_spec.h"
#include "src/model/model_config.h"
#include "src/model/shapes.h"

namespace dynapipe::model {

class LayerPerfModel {
 public:
  LayerPerfModel(const ModelConfig& config, const HardwareSpec& hw, int32_t tp);

  // --- FLOPs (per single layer, forward pass, not divided by tp) ---
  double EncoderLayerFwdFlops(int32_t b, int32_t s) const;
  double DecoderLayerFwdFlops(int32_t b, int32_t s_dec, int32_t s_enc) const;
  // Embedding lookup is bandwidth-bound and negligible; the LM head logit matmul
  // (b*s tokens against the vocabulary) is not:
  double LmHeadFwdFlops(int32_t b, int32_t s) const;

  // --- Time (milliseconds, per single layer on this tp degree) ---
  double EncoderLayerFwdMs(int32_t b, int32_t s) const;
  double DecoderLayerFwdMs(int32_t b, int32_t s_dec, int32_t s_enc) const;
  double LmHeadFwdMs(int32_t b, int32_t s) const;
  // Backward ≈ 2x forward compute; recompute modes replay part/all of the forward.
  double EncoderLayerBwdMs(int32_t b, int32_t s, RecomputeMode mode) const;
  double DecoderLayerBwdMs(int32_t b, int32_t s_dec, int32_t s_enc,
                           RecomputeMode mode) const;

  // --- Activation memory retained between forward and backward (MB, per layer) ---
  double EncoderLayerActivationMb(int32_t b, int32_t s, RecomputeMode mode) const;
  double DecoderLayerActivationMb(int32_t b, int32_t s_dec, int32_t s_enc,
                                  RecomputeMode mode) const;

  const ModelConfig& config() const { return config_; }
  const HardwareSpec& hw() const { return hw_; }
  int32_t tp() const { return tp_; }

 private:
  // Convert FLOPs (already divided by tp) to milliseconds, including the utilization
  // curve and fixed overhead. `tokens` drives the utilization operating point.
  double FlopsToMs(double flops, double tokens) const;
  // Like FlopsToMs but charges `quad_flops` (the attention interior) at the lower
  // attention_efficiency throughput.
  double PassTimeMs(double linear_flops, double quad_flops, double tokens) const;
  // O(s^2) FLOPs of a layer's attention interior (already counted in *FwdFlops).
  double EncoderQuadFlops(int32_t b, int32_t s) const;
  double DecoderQuadFlops(int32_t b, int32_t s_dec, int32_t s_enc) const;
  // Per-pass tensor-parallel allreduce time for a (b, s, h) activation.
  double TpAllreduceMs(int32_t b, int32_t s) const;

  ModelConfig config_;
  HardwareSpec hw_;
  int32_t tp_;
};

}  // namespace dynapipe::model

#endif  // DYNAPIPE_SRC_MODEL_LAYER_PERF_MODEL_H_
