#include "src/mb/ordering.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <numeric>

#include "src/common/check.h"

namespace dynapipe::mb {
namespace {

double Dist(const data::Sample& a, const data::Sample& b) {
  return std::abs(static_cast<double>(a.input_len) - b.input_len) +
         std::abs(static_cast<double>(a.target_len) - b.target_len);
}

std::vector<data::Sample> SortByLength(std::vector<data::Sample> samples) {
  std::sort(samples.begin(), samples.end(),
            [](const data::Sample& a, const data::Sample& b) {
              if (a.input_len != b.input_len) {
                return a.input_len < b.input_len;
              }
              if (a.target_len != b.target_len) {
                return a.target_len < b.target_len;
              }
              return a.id < b.id;
            });
  return samples;
}

std::vector<data::Sample> TspOrder(std::vector<data::Sample> samples) {
  const size_t n = samples.size();
  if (n <= 2) {
    return samples;
  }
  // Nearest-neighbour construction starting from the shortest sample.
  size_t start = 0;
  for (size_t i = 1; i < n; ++i) {
    if (samples[i].total_tokens() < samples[start].total_tokens()) {
      start = i;
    }
  }
  std::vector<size_t> tour;
  std::vector<bool> used(n, false);
  tour.reserve(n);
  tour.push_back(start);
  used[start] = true;
  for (size_t step = 1; step < n; ++step) {
    const data::Sample& cur = samples[tour.back()];
    size_t best = n;
    double best_d = 0.0;
    for (size_t i = 0; i < n; ++i) {
      if (used[i]) {
        continue;
      }
      const double d = Dist(cur, samples[i]);
      if (best == n || d < best_d) {
        best = i;
        best_d = d;
      }
    }
    tour.push_back(best);
    used[best] = true;
  }
  // 2-opt improvement on the open path. Bounded passes keep planning time linear-ish
  // in practice; the tour is already near-good after nearest-neighbour.
  constexpr int kMaxPasses = 4;
  for (int pass = 0; pass < kMaxPasses; ++pass) {
    bool improved = false;
    for (size_t i = 0; i + 2 < n; ++i) {
      for (size_t j = i + 2; j < n; ++j) {
        // Reversing tour[i+1..j] replaces edges (i,i+1) and (j,j+1) with (i,j) and
        // (i+1,j+1); for the open path the (j,j+1) edge vanishes at j == n-1.
        const double before = Dist(samples[tour[i]], samples[tour[i + 1]]) +
                              (j + 1 < n ? Dist(samples[tour[j]], samples[tour[j + 1]])
                                         : 0.0);
        const double after = Dist(samples[tour[i]], samples[tour[j]]) +
                             (j + 1 < n ? Dist(samples[tour[i + 1]], samples[tour[j + 1]])
                                        : 0.0);
        if (after + 1e-9 < before) {
          std::reverse(tour.begin() + static_cast<ptrdiff_t>(i) + 1,
                       tour.begin() + static_cast<ptrdiff_t>(j) + 1);
          improved = true;
        }
      }
    }
    if (!improved) {
      break;
    }
  }
  std::vector<data::Sample> out;
  out.reserve(n);
  for (const size_t idx : tour) {
    out.push_back(samples[idx]);
  }
  return out;
}

}  // namespace

std::vector<data::Sample> OrderSamples(std::vector<data::Sample> samples,
                                       OrderingMethod method) {
  switch (method) {
    case OrderingMethod::kSortByLength:
      return SortByLength(std::move(samples));
    case OrderingMethod::kTsp:
      return TspOrder(std::move(samples));
  }
  DYNAPIPE_CHECK(false);
}

double TourCost(const std::vector<data::Sample>& samples) {
  double total = 0.0;
  for (size_t i = 1; i < samples.size(); ++i) {
    total += Dist(samples[i - 1], samples[i]);
  }
  return total;
}

}  // namespace dynapipe::mb
