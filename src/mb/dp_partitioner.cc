#include "src/mb/dp_partitioner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>

#include "src/common/check.h"
#include "src/common/thread_pool.h"
#include "src/common/timing.h"

namespace dynapipe::mb {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// FNV-1a-style fold, local so mb/ stays dependency-free.
constexpr uint64_t kHashBasis = 1469598103934665603ull;
inline uint64_t HashMix(uint64_t h, uint64_t v) {
  h ^= v;
  h *= 1099511628211ull;
  return h;
}

// Exact bit pattern of a double: cached DP rows are matched on the candidate
// value's bits, not an epsilon compare — reuse must mean "the same DP".
inline uint64_t BitPattern(double v) {
  uint64_t u = 0;
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

model::MicroBatchShape WindowShape(const std::vector<data::Sample>& s, size_t start,
                                   size_t width) {
  model::MicroBatchShape shape;
  shape.num_samples = static_cast<int32_t>(width);
  for (size_t i = start; i < start + width; ++i) {
    shape.input_len = std::max(shape.input_len, s[i].input_len);
    shape.target_len = std::max(shape.target_len, s[i].target_len);
  }
  return shape;
}

}  // namespace

PrefixWindowCache::PrefixWindowCache() : PrefixWindowCache(Options{}) {}

PrefixWindowCache::PrefixWindowCache(Options options) : options_(options) {}

std::vector<PrefixWindowCache::Run> PrefixWindowCache::DecomposeRuns(
    const std::vector<uint64_t>& lengths) {
  std::vector<Run> runs;
  for (const uint64_t v : lengths) {
    if (!runs.empty() && runs.back().value == v) {
      ++runs.back().count;
    } else {
      runs.push_back(Run{v, 1});
    }
  }
  return runs;
}

std::shared_ptr<const PrefixWindowCache::Entry> PrefixWindowCache::Lookup(
    uint64_t context, const std::vector<uint64_t>& lengths, size_t min_prefix,
    size_t* prefix_len) {
  *prefix_len = 0;
  if (lengths.empty()) {
    return nullptr;
  }
  const std::vector<Run> runs = DecomposeRuns(lengths);
  // Rolling probe keys: keys[j] folds the context, runs[0..j-1] with counts,
  // and run j's value (count-free, so partial last-run overlaps still match).
  std::vector<uint64_t> keys(runs.size());
  std::vector<size_t> before(runs.size());  // samples preceding run j
  uint64_t h = HashMix(kHashBasis, context);
  size_t acc = 0;
  for (size_t j = 0; j < runs.size(); ++j) {
    keys[j] = HashMix(h, runs[j].value);
    h = HashMix(keys[j], runs[j].count);
    before[j] = acc;
    acc += runs[j].count;
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t j = runs.size(); j > 0;) {
    --j;
    const auto it = index_.find(keys[j]);
    if (it == index_.end()) {
      continue;
    }
    SlotList::iterator best = slots_.end();
    size_t best_p = 0;
    for (const SlotList::iterator sit : it->second) {
      const Slot& slot = *sit;
      // The probe key already encodes the whole preceding run sequence, but
      // hashes collide; verify directly before trusting the match.
      bool match = slot.runs.size() > j && slot.entry->context == context &&
                   slot.runs[j].value == runs[j].value;
      for (size_t q = 0; match && q < j; ++q) {
        match = slot.runs[q].value == runs[q].value &&
                slot.runs[q].count == runs[q].count;
      }
      if (!match) {
        continue;
      }
      const size_t p = before[j] + std::min(runs[j].count, slot.runs[j].count);
      if (p > best_p) {
        best_p = p;
        best = sit;
      }
    }
    if (best != slots_.end()) {
      // Any match at a smaller run index shares strictly fewer samples, so
      // this is the longest prefix on offer — usable or a miss.
      if (best_p < min_prefix) {
        break;
      }
      ++stats_.hits;
      miss_streak_[context] = 0;
      *prefix_len = best_p;
      slots_.splice(slots_.begin(), slots_, best);
      return best->entry;
    }
  }
  ++stats_.misses;
  ++miss_streak_[context];
  return nullptr;
}

bool PrefixWindowCache::ShouldRecord(uint64_t context) const {
  // Always record through the cold burst (a fresh cache needs entries before
  // any lookup can hit), then once per refresh period so a regime that
  // drifted away and back can re-seed without paying the full per-miss tax.
  constexpr int64_t kColdBurst = 8;
  constexpr int64_t kRefreshPeriod = 16;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = miss_streak_.find(context);
  const int64_t streak = it == miss_streak_.end() ? 0 : it->second;
  return streak <= kColdBurst || streak % kRefreshPeriod == 0;
}

void PrefixWindowCache::Insert(std::shared_ptr<Entry> entry) {
  if (entry == nullptr || entry->lengths.empty()) {
    return;
  }
  Slot slot;
  slot.runs = DecomposeRuns(entry->lengths);
  slot.run_keys.resize(slot.runs.size());
  uint64_t h = HashMix(kHashBasis, entry->context);
  for (size_t j = 0; j < slot.runs.size(); ++j) {
    slot.run_keys[j] = HashMix(h, slot.runs[j].value);
    h = HashMix(slot.run_keys[j], slot.runs[j].count);
  }
  size_t bytes = sizeof(Entry) + 64 + entry->lengths.size() * sizeof(uint64_t) +
                 slot.runs.size() * (sizeof(Run) + sizeof(uint64_t) + 32);
  for (const auto& row : entry->windows) {
    bytes += sizeof(row) + row.size() * sizeof(WindowCost);
  }
  for (const auto& row : entry->rows) {
    bytes += sizeof(row) + row.f.size() * sizeof(double);
  }
  entry->bytes = bytes;
  slot.entry = std::move(entry);
  std::lock_guard<std::mutex> lock(mu_);
  slots_.push_front(std::move(slot));
  for (const uint64_t k : slots_.front().run_keys) {
    index_[k].push_back(slots_.begin());
  }
  stats_.bytes += static_cast<int64_t>(slots_.front().entry->bytes);
  ++stats_.insertions;
  EvictIfNeededLocked();
}

void PrefixWindowCache::EvictIfNeededLocked() {
  while (slots_.size() > 1 &&
         stats_.bytes > static_cast<int64_t>(options_.max_bytes)) {
    const SlotList::iterator victim = std::prev(slots_.end());
    for (const uint64_t k : victim->run_keys) {
      const auto it = index_.find(k);
      if (it == index_.end()) {
        continue;
      }
      auto& vec = it->second;
      vec.erase(std::remove(vec.begin(), vec.end(), victim), vec.end());
      if (vec.empty()) {
        index_.erase(it);
      }
    }
    stats_.bytes -= static_cast<int64_t>(victim->entry->bytes);
    slots_.erase(victim);
    ++stats_.evictions;
  }
}

void PrefixWindowCache::Invalidate() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.evictions += static_cast<int64_t>(slots_.size());
  stats_.bytes = 0;
  slots_.clear();
  index_.clear();
  miss_streak_.clear();
}

PrefixWindowCache::Stats PrefixWindowCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t PrefixWindowCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_.size();
}

DpPartitioner::DpPartitioner(const MicroBatchCostFn& cost, DpPartitionerOptions options)
    : cost_(cost), options_(std::move(options)) {
  DYNAPIPE_CHECK(options_.num_stages >= 1);
  DYNAPIPE_CHECK(options_.num_replicas >= 1);
  DYNAPIPE_CHECK(options_.max_microbatch_size >= 1);
  DYNAPIPE_CHECK(options_.tmax_interval_ms > 0.0);
  DYNAPIPE_CHECK(options_.max_tmax_candidates >= 2);
}

PartitionResult DpPartitioner::Partition(
    const std::vector<data::Sample>& ordered) const {
  PartitionResult result;
  const size_t n = ordered.size();
  if (n == 0) {
    result.feasible = true;
    return result;
  }
  const auto counters_before = cost_.CacheCounters();
  const auto precompute_start = SteadyClock::now();

  // --- Incremental planning: probe the prefix cache for the most recent batch
  // sharing the longest sorted-length prefix with this one. Reuse below only
  // ever copies values that are bitwise what the cold computation would
  // produce (see PrefixWindowCache's header for the argument), so every path
  // out of this function is bit-identical with the cache on or off.
  PrefixWindowCache* const pcache = options_.prefix_cache;
  const size_t max_mb = static_cast<size_t>(options_.max_microbatch_size);
  std::vector<uint64_t> lengths;
  std::shared_ptr<const PrefixWindowCache::Entry> cached;
  size_t prefix = 0;
  if (pcache != nullptr || options_.dedup_window_rows) {
    lengths.reserve(n);
    for (const data::Sample& s : ordered) {
      lengths.push_back(PackedSampleLength(s));
    }
  }
  if (pcache != nullptr) {
    cached = pcache->Lookup(options_.prefix_cache_context, lengths,
                            std::min(max_mb, n), &prefix);
  }
  result.stats.prefix_cache_hit = cached != nullptr;
  // Window row i reads samples [i, i + max_mb) only, so rows entirely inside
  // the shared prefix copy over bitwise. When the batches are identical the
  // end-of-batch truncation matches too, and every row is reusable.
  const bool identical =
      cached != nullptr && prefix == n && cached->lengths.size() == n;
  const size_t reusable_rows = cached == nullptr ? 0
                               : identical       ? n
                               : (prefix >= max_mb ? prefix - max_mb + 1 : 0);
  result.stats.prefix_window_rows_reused = static_cast<int64_t>(reusable_rows);

  // --- Content-addressed row dedup: window row i is a pure function of the
  // packed lengths of samples [i, i + max_mb) (truncated at the batch end) and
  // the deterministic cost oracle, so two rows with identical content are
  // bitwise equal. Only the first occurrence (the representative) is computed;
  // duplicates copy it after the parallel pass. Hash collisions are guarded by
  // a full content compare — a colliding-but-different row simply becomes its
  // own representative, so correctness never rests on the hash.
  std::vector<size_t> row_rep;
  size_t dedup_rows = 0;
  // Cheap precheck: duplicate rows need repeated lengths. When most lengths
  // are distinct (unquantized batches), the O(n * W) key-hashing pass cannot
  // pay for itself, so skip it outright.
  bool worth_dedup = options_.dedup_window_rows && n > 1;
  if (worth_dedup) {
    size_t distinct = 1;
    for (size_t i = 1; i < n; ++i) {
      distinct += lengths[i] != lengths[i - 1] ? 1 : 0;
    }
    worth_dedup = distinct * 2 <= n;
  }
  if (worth_dedup) {
    row_rep.resize(n);
    std::unordered_map<uint64_t, size_t> first_with_key;
    first_with_key.reserve(n * 2);
    for (size_t i = 0; i < n; ++i) {
      const size_t cnt = std::min(max_mb, n - i);
      uint64_t h = HashMix(kHashBasis, cnt);
      for (size_t k = 0; k < cnt; ++k) {
        h = HashMix(h, lengths[i + k]);
      }
      const auto [it, inserted] = first_with_key.emplace(h, i);
      if (inserted) {
        row_rep[i] = i;
        continue;
      }
      const size_t j = it->second;
      bool same = std::min(max_mb, n - j) == cnt;
      for (size_t k = 0; same && k < cnt; ++k) {
        same = lengths[j + k] == lengths[i + k];
      }
      row_rep[i] = same ? j : i;
      dedup_rows += same ? 1 : 0;
    }
  }
  result.stats.window_rows_deduped = static_cast<int64_t>(dedup_rows);

  // --- Precompute feasible windows, shared by every t_max candidate below.
  // windows[i][w-1] covers ordered[i .. i+w-1]. Window time and activation are
  // monotone non-decreasing in w (the count grows and padded lengths never
  // shrink), so each start index has a contiguous feasible range and we can
  // stop extending at the first violation.
  std::vector<std::vector<WindowCost>> windows(n);
  // Times-only mirror of `windows` for the DP sweep: per start the array is
  // contiguous and monotone in w, so the inner relax loop scans sequentially
  // and stops at the first time over t_max.
  std::vector<std::vector<double>> win_times(n);
  // Start indices are independent, so the precompute — the dominant planning
  // phase once the DPs are vectorized — fans out over the pool. Each index
  // writes only its own slots; the min/max reductions below run serially over
  // the finished table, so the result is bit-identical to the serial loop
  // (min/max need no FP associativity). Racing cost-cache misses on shared
  // shapes derive identical values (see CachedCostOracle). An empty window
  // row means even a single sample breaks the memory limit and the whole
  // partition is infeasible; the flag lets remaining indices bail instead of
  // finishing the O(n*W) table as wasted work (the serial loop's early
  // return).
  std::atomic<bool> infeasible{false};
  ParallelFor(options_.pool, n, [&](size_t i) {
    if (infeasible.load(std::memory_order_relaxed)) {
      return;
    }
    // Duplicate-content rows copy their representative after this pass.
    if (!row_rep.empty() && row_rep[i] != i) {
      return;
    }
    if (i < reusable_rows) {
      const std::vector<WindowCost>& src = cached->windows[i];
      windows[i] = src;
      win_times[i].reserve(src.size());
      for (const WindowCost& win : src) {
        win_times[i].push_back(win.time_ms);
      }
      // Cached rows are never empty (infeasible precompute is not inserted),
      // but keep the serial loop's invariant anyway.
      if (windows[i].empty()) {
        infeasible.store(true, std::memory_order_relaxed);
      }
      return;
    }
    model::MicroBatchShape shape;
    for (size_t w = 1; i + w <= n && w <= static_cast<size_t>(options_.max_microbatch_size);
         ++w) {
      shape.num_samples = static_cast<int32_t>(w);
      shape.input_len = std::max(shape.input_len, ordered[i + w - 1].input_len);
      shape.target_len = std::max(shape.target_len, ordered[i + w - 1].target_len);
      WindowCost win;
      if (!cost_.WindowCosts(shape, options_.activation_limit_mb, &win.time_ms,
                             &win.act_mb)) {
        break;
      }
      windows[i].push_back(win);
      win_times[i].push_back(win.time_ms);
    }
    if (windows[i].empty()) {
      infeasible.store(true, std::memory_order_relaxed);
    }
  });
  if (infeasible.load(std::memory_order_relaxed)) {
    // A single sample exceeds the memory limit: no partition can help (§4 "the
    // training can continue ... as long as the activation of one single
    // micro-batch fits into device memory" — here it does not).
    result.feasible = false;
    return result;
  }
  if (!row_rep.empty()) {
    for (size_t i = 0; i < n; ++i) {
      if (row_rep[i] != i) {
        windows[i] = windows[row_rep[i]];
        win_times[i] = win_times[row_rep[i]];
      }
    }
  }
  double min_single_time = kInf;
  double max_single_time = 0.0;
  double max_window_time = 0.0;
  for (size_t i = 0; i < n; ++i) {
    DYNAPIPE_CHECK(!windows[i].empty());
    min_single_time = std::min(min_single_time, windows[i].front().time_ms);
    max_single_time = std::max(max_single_time, windows[i].front().time_ms);
    for (const WindowCost& win : windows[i]) {
      max_window_time = std::max(max_window_time, win.time_ms);
    }
  }

  result.stats.window_precompute_ms = ElapsedMs(precompute_start);
  const auto search_start = SteadyClock::now();

  // --- t_max candidates: quantized distinct window times, at or above the largest
  // single-sample time (smaller values cannot cover that sample).
  std::vector<double> candidates;
  {
    const double interval = options_.tmax_interval_ms;
    // Quantized times are multiples of `interval`, so distinct sorted values
    // come from bucket presence-marking in O(windows + buckets) instead of an
    // O(W log W) sort of every window time — the sort dominated the whole
    // candidate phase on large batches. Degenerate intervals (so fine that the
    // bucket table would dwarf the window count) fall back to sort+unique.
    std::vector<double> quantized;
    const double bucket_span = max_window_time / interval;
    const size_t max_buckets = 16 * (n * static_cast<size_t>(
                                             options_.max_microbatch_size) +
                                     1024);
    if (bucket_span > 0.0 && bucket_span < static_cast<double>(max_buckets)) {
      const size_t num_buckets = static_cast<size_t>(bucket_span) + 2;
      std::vector<uint8_t> present(num_buckets, 0);
      for (const auto& per_start : windows) {
        for (const auto& win : per_start) {
          if (win.time_ms + 1e-12 < max_single_time) {
            continue;
          }
          const size_t q = static_cast<size_t>(std::ceil(win.time_ms / interval));
          DYNAPIPE_CHECK(q < num_buckets);
          present[q] = 1;
        }
      }
      for (size_t q = 0; q < num_buckets; ++q) {
        if (present[q] != 0) {
          quantized.push_back(static_cast<double>(q) * interval);
        }
      }
    } else {
      for (const auto& per_start : windows) {
        for (const auto& win : per_start) {
          if (win.time_ms + 1e-12 < max_single_time) {
            continue;
          }
          quantized.push_back(std::ceil(win.time_ms / interval) * interval);
        }
      }
      std::sort(quantized.begin(), quantized.end());
      quantized.erase(std::unique(quantized.begin(), quantized.end()),
                      quantized.end());
    }
    DYNAPIPE_CHECK(!quantized.empty());
    const size_t cap = static_cast<size_t>(options_.max_tmax_candidates);
    if (quantized.size() <= cap) {
      candidates = std::move(quantized);
    } else {
      // Even subsample of the interior with both extremes pinned explicitly:
      // the smallest candidate anchors the min-max end of the sweep and the
      // largest guarantees at least one feasible candidate, so neither may
      // fall victim to rounding or dedup.
      candidates.reserve(cap);
      candidates.push_back(quantized.front());
      for (size_t k = 1; k + 1 < cap; ++k) {
        const size_t idx = k * (quantized.size() - 1) / (cap - 1);
        if (quantized[idx] > candidates.back()) {
          candidates.push_back(quantized[idx]);
        }
      }
      if (quantized.back() > candidates.back()) {
        candidates.push_back(quantized.back());
      }
    }
  }

  // --- Warm-start pruning. Each seed partition is re-costed under *this*
  // batch's window table, front to back — the same order the DP sums a path,
  // so the total is bitwise the f-value the DP would assign it. A valid seed
  // is a feasible partition, so with t_seed the smallest candidate admitting
  // its widest window (evaluated with the DP's own `candidate + 1e-12`
  // arithmetic),
  //
  //     U = (c - 1) * (t_seed + 1e-12) + seed_total / D
  //
  // bounds the winning objective from above: the DP at t_seed finds a
  // partition at least as good as the seed, and the merge only improves on
  // it. A candidate t is skipped when a lower bound on every feasible
  // partition under t clears U by a relative margin that dwarfs FP rounding —
  // the skipped candidate could never win the strict-improvement merge, so
  // pruning is bit-identical to the full sweep (pinned by
  // tests/planning_incremental_test.cpp).
  double warm_bound = kInf;
  for (const std::vector<int32_t>& seed : options_.warm_start_seeds) {
    if (seed.empty()) {
      continue;
    }
    double seed_max = 0.0;
    double seed_total = 0.0;
    size_t pos = 0;
    bool valid = true;
    for (const int32_t w : seed) {
      if (w < 1 || pos >= n || static_cast<size_t>(w) > win_times[pos].size()) {
        valid = false;
        break;
      }
      const double t = win_times[pos][static_cast<size_t>(w) - 1];
      seed_max = std::max(seed_max, t);
      seed_total += t;
      pos += static_cast<size_t>(w);
    }
    if (!valid || pos != n) {
      continue;
    }
    size_t lo = 0;
    size_t hi = candidates.size();
    while (lo < hi) {
      const size_t mid = lo + (hi - lo) / 2;
      if (candidates[mid] + 1e-12 >= seed_max) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    if (lo == candidates.size()) {
      continue;
    }
    const double bound = (options_.num_stages - 1) * (candidates[lo] + 1e-12) +
                         seed_total / options_.num_replicas;
    warm_bound = std::min(warm_bound, bound);
  }
  std::vector<uint8_t> pruned;
  if (warm_bound < kInf) {
    // min_time_per_width[w-1]: the cheapest width-w window anywhere. Monotone
    // in w (each per-start row is monotone and every start offering width w+1
    // also offers w), so the widest window any start fits under a candidate
    // is one binary search. Lower bound for candidate t: a partition under t
    // has at least ceil(n / widest) parts, its first part starts at 0 (time
    // >= win_times[0][0] by same-start width monotonicity), and every part
    // costs at least min_single_time.
    size_t max_width = 0;
    for (size_t i = 0; i < n; ++i) {
      max_width = std::max(max_width, win_times[i].size());
    }
    std::vector<double> min_time_per_width(max_width, kInf);
    for (size_t i = 0; i < n; ++i) {
      for (size_t w = 0; w < win_times[i].size(); ++w) {
        min_time_per_width[w] = std::min(min_time_per_width[w], win_times[i][w]);
      }
    }
    pruned.assign(candidates.size(), 0);
    const double first_single = win_times[0][0];
    for (size_t c_idx = 0; c_idx < candidates.size(); ++c_idx) {
      const double tmax = candidates[c_idx] + 1e-12;
      const size_t widest = static_cast<size_t>(
          std::upper_bound(min_time_per_width.begin(), min_time_per_width.end(),
                           tmax) -
          min_time_per_width.begin());
      double lower = kInf;  // widest == 0: no window fits, DP infeasible
      if (widest > 0) {
        const size_t parts = (n + widest - 1) / widest;
        lower = (options_.num_stages - 1) * first_single +
                (first_single +
                 static_cast<double>(parts - 1) * min_single_time) /
                    options_.num_replicas;
      }
      if (lower > warm_bound * (1.0 + 1e-9) + 1e-12) {
        pruned[c_idx] = 1;
        ++result.stats.warmstart_pruned;
      }
    }
  }

  // --- DP per candidate. f[k] = min total time over partitions of the first k
  // samples with every micro-batch time <= tmax; parent[k] = width of the last
  // micro-batch in an optimal partition of the first k. Candidates are
  // independent given the shared window table, so they fan out over the pool;
  // each writes its outcome into its own slot and the merge below is serial.
  struct CandidateOutcome {
    bool feasible = false;
    double objective = kInf;
    std::vector<int32_t> widths;  // back-to-front, as reconstructed
    // Forward-DP row handed to the prefix cache (only when recording).
    std::vector<double> f;
    bool f_valid = false;
    bool f_aborted = false;
    size_t f_abort_pos = 0;
  };
  std::vector<CandidateOutcome> outcomes(candidates.size());

  // Cached forward-DP rows, matched by the candidate value's exact bits:
  // quantized candidates are q * interval, so the shared prefix reproduces
  // identical doubles across batches.
  std::unordered_map<uint64_t, const PrefixWindowCache::CandidateRow*>
      cached_rows;
  if (cached != nullptr) {
    cached_rows.reserve(cached->rows.size());
    for (const PrefixWindowCache::CandidateRow& row : cached->rows) {
      cached_rows.emplace(BitPattern(row.tmax), &row);
    }
  }
  // Record rows for insertion only on a miss. Recording is the one part of
  // the incremental layer that costs real time (the f rows are an O(n) copy
  // per candidate, ~100 KB/mode on paper-scale batches), and on a hit it buys
  // nothing: cross-shuffle prefixes come from the dataset's sorted length
  // head, so future batches keep matching the cold entry about as well as
  // they would match this one. Miss-only recording also keeps the cache at
  // one entry per distinct regime instead of churning an insert+eviction per
  // iteration. If the batch distribution drifts far enough that the shared
  // prefix drops below the lookup threshold, the lookup misses and the next
  // call re-records — the cache refreshes itself exactly when hits stop.
  // ShouldRecord additionally backs recording off when misses streak
  // (unquantized regimes whose prefixes never recur would otherwise pay the
  // entry-build tax every iteration for nothing).
  const bool record_rows =
      pcache != nullptr && cached == nullptr &&
      pcache->ShouldRecord(options_.prefix_cache_context);
  std::atomic<int64_t> f_rows_reused{0};

  // Each start's usable-window cutoff under a candidate (times <= candidate +
  // eps) is derived *inside* the per-candidate lambda: per-start times are
  // sorted (monotone in w), so one binary search per (start, candidate) — an
  // O(n log W) sliver next to the O(n*W) DP — replaces what used to be a
  // serial O(n x candidates) merge-walk plus a 4B/cell cutoff table ahead of
  // the fan-out. That walk was the sweep's Amdahl limit at 16k-sample
  // batches; now the only serial work between the precompute and the merge is
  // candidate selection. upper_bound on a sorted array returns exactly the
  // merge-walk's count, so plans are bit-identical (pinned by
  // tests/planning_parallel_test.cpp).
  ParallelFor(options_.pool, candidates.size(), [&](size_t c_idx) {
    if (!pruned.empty() && pruned[c_idx] != 0) {
      return;  // warm-start bound proved this candidate cannot win
    }
    const double tmax = candidates[c_idx] + 1e-12;
    CandidateOutcome& out = outcomes[c_idx];
    // Forward DP, start-major: windows starting at i extend f[i] to f[i+w].
    // No parent array — the relax loop is then a pure contiguous min that the
    // compiler vectorizes, and widths are reconstructed below by exact float
    // equality (f[i] is final when start i is processed, so f[k] is bitwise
    // equal to f[start] + time for some achieving window). Thread-locals avoid
    // per-candidate allocation; a thread runs one candidate at a time
    // (ParallelFor only steals other work between candidates, never inside
    // one), so reuse is safe.
    thread_local std::vector<double> f;
    // Prefix reuse: f[k] is determined by samples [0, k) alone, so a cached
    // row for the *same candidate bits* copies over through the shared
    // prefix; only starts reaching past it replay (relaxing a copied region
    // again is a bitwise no-op — the cached values are already minimal).
    size_t first_start = 0;
    const PrefixWindowCache::CandidateRow* reuse_row = nullptr;
    if (!cached_rows.empty()) {
      const auto rit = cached_rows.find(BitPattern(candidates[c_idx]));
      if (rit != cached_rows.end()) {
        reuse_row = rit->second;
      }
    }
    if (reuse_row != nullptr && reuse_row->aborted &&
        reuse_row->abort_pos <= prefix) {
      // The cached DP went unreachable *inside* the shared prefix; those f
      // values depend on prefix samples alone, so this batch's DP aborts at
      // the same start. Infeasible candidate, zero work.
      if (record_rows) {
        out.f.assign(reuse_row->f.begin(),
                     reuse_row->f.begin() +
                         static_cast<ptrdiff_t>(reuse_row->abort_pos) + 1);
        out.f_valid = true;
        out.f_aborted = true;
        out.f_abort_pos = reuse_row->abort_pos;
      }
      f_rows_reused.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (reuse_row != nullptr) {
      const size_t valid_len =
          reuse_row->aborted ? reuse_row->abort_pos : reuse_row->f.size() - 1;
      const size_t copy_len = std::min(prefix, valid_len);
      f.assign(n + 1, kInf);
      std::copy_n(reuse_row->f.begin(), copy_len + 1, f.begin());
      // f[k <= copy_len] already carries every contribution from starts
      // below copy_len + 1; only starts whose windows reach past copy_len
      // must replay.
      first_start = copy_len + 1 > max_mb ? copy_len + 1 - max_mb : 0;
      f_rows_reused.fetch_add(1, std::memory_order_relaxed);
    } else {
      f.assign(n + 1, kInf);
      f[0] = 0.0;
    }
    bool reachable = true;
    size_t abort_pos = 0;
    for (size_t i = first_start; i < n; ++i) {
      if (f[i] == kInf) {
        // An unreachable prefix dooms the whole candidate: any window crossing
        // sample i-1 contains the sub-window with the same start ending at i,
        // which by cost monotonicity is no more expensive — so if some
        // partition covered sample i-1, f[i] would be finite. (The seed had
        // this guard with `&& k == n` attached, making it dead.)
        reachable = false;
        abort_pos = i;
        break;
      }
      const double fi = f[i];
      const std::vector<double>& times = win_times[i];
      const size_t cut = static_cast<size_t>(
          std::upper_bound(times.begin(), times.end(), tmax) - times.begin());
      // restrict lets the compiler vectorize the min: f's tail and this start's
      // time array never alias.
      const double* __restrict tp = times.data();
      double* __restrict fk = f.data() + i + 1;
      for (size_t w = 0; w < cut; ++w) {
        fk[w] = std::min(fk[w], fi + tp[w]);
      }
    }
    if (record_rows) {
      out.f = f;
      out.f_valid = true;
      out.f_aborted = !reachable;
      out.f_abort_pos = abort_pos;
    }
    if (!reachable || f[n] == kInf) {
      return;
    }
    // Reconstruct and score with the *realized* max (<= tmax), which is the exact
    // Eq. 1 objective rather than the candidate upper bound. The smallest width
    // whose add reproduces f[k] bitwise is a deterministic optimal choice.
    double realized_max = 0.0;
    for (size_t k = n; k > 0;) {
      const size_t wmax =
          std::min(k, static_cast<size_t>(options_.max_microbatch_size));
      size_t found = 0;
      for (size_t w = 1; w <= wmax; ++w) {
        const size_t start = k - w;
        if (w > win_times[start].size()) {
          continue;
        }
        const double t = win_times[start][w - 1];
        if (t > tmax) {
          continue;
        }
        if (f[start] + t == f[k]) {
          found = w;
          realized_max = std::max(realized_max, t);
          break;
        }
      }
      DYNAPIPE_CHECK(found >= 1);
      out.widths.push_back(static_cast<int32_t>(found));
      k -= found;
    }
    out.objective =
        (options_.num_stages - 1) * realized_max + f[n] / options_.num_replicas;
    out.feasible = true;
  });

  // Deterministic merge in ascending-t_max order: strict improvement only, so
  // ties keep the earliest (lowest) candidate — exactly the serial loop's pick.
  double best_objective = kInf;
  std::vector<int32_t> best_widths;
  for (auto& out : outcomes) {
    if (out.feasible && out.objective < best_objective) {
      best_objective = out.objective;
      best_widths = std::move(out.widths);
    }
  }
  result.candidates_tried = static_cast<int32_t>(candidates.size());
  result.stats.candidate_search_ms = ElapsedMs(search_start);
  result.stats.parallel_workers =
      options_.pool != nullptr ? std::max(1, options_.pool->num_threads()) : 1;
  result.stats.prefix_f_rows_reused =
      f_rows_reused.load(std::memory_order_relaxed);
  const auto counters_after = cost_.CacheCounters();
  result.stats.cost_cache_hits = counters_after.first - counters_before.first;
  result.stats.cost_cache_misses = counters_after.second - counters_before.second;

  // Hand the finished table to the prefix cache. The window table is complete
  // and valid even when every candidate came up infeasible, so both exits
  // record; `windows` is moved, so this must run after micro-batch
  // construction on the feasible path.
  const auto record_entry = [&]() {
    if (!record_rows) {
      return;
    }
    auto entry = std::make_shared<PrefixWindowCache::Entry>();
    entry->context = options_.prefix_cache_context;
    entry->lengths = std::move(lengths);
    entry->windows = std::move(windows);
    entry->rows.reserve(outcomes.size());
    for (size_t c_idx = 0; c_idx < outcomes.size(); ++c_idx) {
      CandidateOutcome& out = outcomes[c_idx];
      if (!out.f_valid) {
        continue;
      }
      PrefixWindowCache::CandidateRow row;
      row.tmax = candidates[c_idx];
      row.f = std::move(out.f);
      row.aborted = out.f_aborted;
      row.abort_pos = out.f_abort_pos;
      entry->rows.push_back(std::move(row));
    }
    pcache->Insert(std::move(entry));
  };

  if (best_widths.empty()) {
    record_entry();
    result.feasible = false;
    return result;
  }

  // Widths were collected back-to-front.
  std::reverse(best_widths.begin(), best_widths.end());
  size_t pos = 0;
  for (const int32_t w : best_widths) {
    std::vector<data::Sample> group(ordered.begin() + static_cast<ptrdiff_t>(pos),
                                    ordered.begin() + static_cast<ptrdiff_t>(pos + w));
    MicroBatch m = MakeMicroBatch(std::move(group));
    const WindowCost& win = windows[pos][static_cast<size_t>(w) - 1];
    m.predicted_time_ms = win.time_ms;
    m.predicted_activation_mb = win.act_mb;
    result.micro_batches.push_back(std::move(m));
    result.max_time_ms = std::max(result.max_time_ms, win.time_ms);
    result.total_time_ms += win.time_ms;
    pos += static_cast<size_t>(w);
  }
  DYNAPIPE_CHECK(pos == n);
  record_entry();
  result.objective_ms = (options_.num_stages - 1) * result.max_time_ms +
                        result.total_time_ms / options_.num_replicas;
  result.feasible = true;
  return result;
}

PartitionResult BruteForcePartition(const MicroBatchCostFn& cost,
                                    const DpPartitionerOptions& options,
                                    const std::vector<data::Sample>& ordered) {
  const size_t n = ordered.size();
  PartitionResult best;
  if (n == 0) {
    best.feasible = true;
    return best;
  }
  DYNAPIPE_CHECK_MSG(n <= 20, "brute force is exponential; use small inputs");
  double best_objective = kInf;
  // Bitmask b: bit k set means a split between samples k and k+1.
  for (uint64_t mask = 0; mask < (1ull << (n - 1)); ++mask) {
    double total = 0.0;
    double max_t = 0.0;
    bool ok = true;
    size_t start = 0;
    std::vector<std::pair<size_t, size_t>> ranges;
    for (size_t k = 0; k <= n - 1 && ok; ++k) {
      const bool split_here = k == n - 1 || (mask >> k & 1ull) != 0;
      if (!split_here) {
        continue;
      }
      const size_t width = k + 1 - start;
      if (width > static_cast<size_t>(options.max_microbatch_size)) {
        ok = false;
        break;
      }
      const model::MicroBatchShape shape = WindowShape(ordered, start, width);
      const double act = cost.ActivationMb(shape);
      if (options.activation_limit_mb > 0.0 && act > options.activation_limit_mb) {
        ok = false;
        break;
      }
      const double t = cost.TimeMs(shape);
      total += t;
      max_t = std::max(max_t, t);
      ranges.emplace_back(start, width);
      start = k + 1;
    }
    if (!ok) {
      continue;
    }
    const double objective =
        (options.num_stages - 1) * max_t + total / options.num_replicas;
    if (objective < best_objective) {
      best_objective = objective;
      best.micro_batches.clear();
      for (const auto& [s, w] : ranges) {
        std::vector<data::Sample> group(ordered.begin() + static_cast<ptrdiff_t>(s),
                                        ordered.begin() + static_cast<ptrdiff_t>(s + w));
        best.micro_batches.push_back(MakeMicroBatch(std::move(group)));
      }
      best.max_time_ms = max_t;
      best.total_time_ms = total;
      best.objective_ms = objective;
      best.feasible = true;
    }
  }
  return best;
}

}  // namespace dynapipe::mb
