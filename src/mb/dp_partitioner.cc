#include "src/mb/dp_partitioner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>

#include "src/common/check.h"
#include "src/common/thread_pool.h"
#include "src/common/timing.h"

namespace dynapipe::mb {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct Window {
  double time_ms = 0.0;
  double act_mb = 0.0;
};

model::MicroBatchShape WindowShape(const std::vector<data::Sample>& s, size_t start,
                                   size_t width) {
  model::MicroBatchShape shape;
  shape.num_samples = static_cast<int32_t>(width);
  for (size_t i = start; i < start + width; ++i) {
    shape.input_len = std::max(shape.input_len, s[i].input_len);
    shape.target_len = std::max(shape.target_len, s[i].target_len);
  }
  return shape;
}

}  // namespace

DpPartitioner::DpPartitioner(const MicroBatchCostFn& cost, DpPartitionerOptions options)
    : cost_(cost), options_(std::move(options)) {
  DYNAPIPE_CHECK(options_.num_stages >= 1);
  DYNAPIPE_CHECK(options_.num_replicas >= 1);
  DYNAPIPE_CHECK(options_.max_microbatch_size >= 1);
  DYNAPIPE_CHECK(options_.tmax_interval_ms > 0.0);
  DYNAPIPE_CHECK(options_.max_tmax_candidates >= 2);
}

PartitionResult DpPartitioner::Partition(
    const std::vector<data::Sample>& ordered) const {
  PartitionResult result;
  const size_t n = ordered.size();
  if (n == 0) {
    result.feasible = true;
    return result;
  }
  const auto counters_before = cost_.CacheCounters();
  const auto precompute_start = SteadyClock::now();

  // --- Precompute feasible windows, shared by every t_max candidate below.
  // windows[i][w-1] covers ordered[i .. i+w-1]. Window time and activation are
  // monotone non-decreasing in w (the count grows and padded lengths never
  // shrink), so each start index has a contiguous feasible range and we can
  // stop extending at the first violation.
  std::vector<std::vector<Window>> windows(n);
  // Times-only mirror of `windows` for the DP sweep: per start the array is
  // contiguous and monotone in w, so the inner relax loop scans sequentially
  // and stops at the first time over t_max.
  std::vector<std::vector<double>> win_times(n);
  // Start indices are independent, so the precompute — the dominant planning
  // phase once the DPs are vectorized — fans out over the pool. Each index
  // writes only its own slots; the min/max reductions below run serially over
  // the finished table, so the result is bit-identical to the serial loop
  // (min/max need no FP associativity). Racing cost-cache misses on shared
  // shapes derive identical values (see CachedCostOracle). An empty window
  // row means even a single sample breaks the memory limit and the whole
  // partition is infeasible; the flag lets remaining indices bail instead of
  // finishing the O(n*W) table as wasted work (the serial loop's early
  // return).
  std::atomic<bool> infeasible{false};
  ParallelFor(options_.pool, n, [&](size_t i) {
    if (infeasible.load(std::memory_order_relaxed)) {
      return;
    }
    model::MicroBatchShape shape;
    for (size_t w = 1; i + w <= n && w <= static_cast<size_t>(options_.max_microbatch_size);
         ++w) {
      shape.num_samples = static_cast<int32_t>(w);
      shape.input_len = std::max(shape.input_len, ordered[i + w - 1].input_len);
      shape.target_len = std::max(shape.target_len, ordered[i + w - 1].target_len);
      Window win;
      if (!cost_.WindowCosts(shape, options_.activation_limit_mb, &win.time_ms,
                             &win.act_mb)) {
        break;
      }
      windows[i].push_back(win);
      win_times[i].push_back(win.time_ms);
    }
    if (windows[i].empty()) {
      infeasible.store(true, std::memory_order_relaxed);
    }
  });
  if (infeasible.load(std::memory_order_relaxed)) {
    // A single sample exceeds the memory limit: no partition can help (§4 "the
    // training can continue ... as long as the activation of one single
    // micro-batch fits into device memory" — here it does not).
    result.feasible = false;
    return result;
  }
  double min_single_time = kInf;
  double max_single_time = 0.0;
  double max_window_time = 0.0;
  for (size_t i = 0; i < n; ++i) {
    DYNAPIPE_CHECK(!windows[i].empty());
    min_single_time = std::min(min_single_time, windows[i].front().time_ms);
    max_single_time = std::max(max_single_time, windows[i].front().time_ms);
    for (const Window& win : windows[i]) {
      max_window_time = std::max(max_window_time, win.time_ms);
    }
  }

  result.stats.window_precompute_ms = ElapsedMs(precompute_start);
  const auto search_start = SteadyClock::now();

  // --- t_max candidates: quantized distinct window times, at or above the largest
  // single-sample time (smaller values cannot cover that sample).
  std::vector<double> candidates;
  {
    const double interval = options_.tmax_interval_ms;
    // Quantized times are multiples of `interval`, so distinct sorted values
    // come from bucket presence-marking in O(windows + buckets) instead of an
    // O(W log W) sort of every window time — the sort dominated the whole
    // candidate phase on large batches. Degenerate intervals (so fine that the
    // bucket table would dwarf the window count) fall back to sort+unique.
    std::vector<double> quantized;
    const double bucket_span = max_window_time / interval;
    const size_t max_buckets = 16 * (n * static_cast<size_t>(
                                             options_.max_microbatch_size) +
                                     1024);
    if (bucket_span > 0.0 && bucket_span < static_cast<double>(max_buckets)) {
      const size_t num_buckets = static_cast<size_t>(bucket_span) + 2;
      std::vector<uint8_t> present(num_buckets, 0);
      for (const auto& per_start : windows) {
        for (const auto& win : per_start) {
          if (win.time_ms + 1e-12 < max_single_time) {
            continue;
          }
          const size_t q = static_cast<size_t>(std::ceil(win.time_ms / interval));
          DYNAPIPE_CHECK(q < num_buckets);
          present[q] = 1;
        }
      }
      for (size_t q = 0; q < num_buckets; ++q) {
        if (present[q] != 0) {
          quantized.push_back(static_cast<double>(q) * interval);
        }
      }
    } else {
      for (const auto& per_start : windows) {
        for (const auto& win : per_start) {
          if (win.time_ms + 1e-12 < max_single_time) {
            continue;
          }
          quantized.push_back(std::ceil(win.time_ms / interval) * interval);
        }
      }
      std::sort(quantized.begin(), quantized.end());
      quantized.erase(std::unique(quantized.begin(), quantized.end()),
                      quantized.end());
    }
    DYNAPIPE_CHECK(!quantized.empty());
    const size_t cap = static_cast<size_t>(options_.max_tmax_candidates);
    if (quantized.size() <= cap) {
      candidates = std::move(quantized);
    } else {
      // Even subsample of the interior with both extremes pinned explicitly:
      // the smallest candidate anchors the min-max end of the sweep and the
      // largest guarantees at least one feasible candidate, so neither may
      // fall victim to rounding or dedup.
      candidates.reserve(cap);
      candidates.push_back(quantized.front());
      for (size_t k = 1; k + 1 < cap; ++k) {
        const size_t idx = k * (quantized.size() - 1) / (cap - 1);
        if (quantized[idx] > candidates.back()) {
          candidates.push_back(quantized[idx]);
        }
      }
      if (quantized.back() > candidates.back()) {
        candidates.push_back(quantized.back());
      }
    }
  }

  // --- DP per candidate. f[k] = min total time over partitions of the first k
  // samples with every micro-batch time <= tmax; parent[k] = width of the last
  // micro-batch in an optimal partition of the first k. Candidates are
  // independent given the shared window table, so they fan out over the pool;
  // each writes its outcome into its own slot and the merge below is serial.
  struct CandidateOutcome {
    bool feasible = false;
    double objective = kInf;
    std::vector<int32_t> widths;  // back-to-front, as reconstructed
  };
  std::vector<CandidateOutcome> outcomes(candidates.size());

  // Each start's usable-window cutoff under a candidate (times <= candidate +
  // eps) is derived *inside* the per-candidate lambda: per-start times are
  // sorted (monotone in w), so one binary search per (start, candidate) — an
  // O(n log W) sliver next to the O(n*W) DP — replaces what used to be a
  // serial O(n x candidates) merge-walk plus a 4B/cell cutoff table ahead of
  // the fan-out. That walk was the sweep's Amdahl limit at 16k-sample
  // batches; now the only serial work between the precompute and the merge is
  // candidate selection. upper_bound on a sorted array returns exactly the
  // merge-walk's count, so plans are bit-identical (pinned by
  // tests/planning_parallel_test.cpp).
  ParallelFor(options_.pool, candidates.size(), [&](size_t c_idx) {
    const double tmax = candidates[c_idx] + 1e-12;
    // Forward DP, start-major: windows starting at i extend f[i] to f[i+w].
    // No parent array — the relax loop is then a pure contiguous min that the
    // compiler vectorizes, and widths are reconstructed below by exact float
    // equality (f[i] is final when start i is processed, so f[k] is bitwise
    // equal to f[start] + time for some achieving window). Thread-locals avoid
    // per-candidate allocation; a thread runs one candidate at a time
    // (ParallelFor only steals other work between candidates, never inside
    // one), so reuse is safe.
    thread_local std::vector<double> f;
    f.assign(n + 1, kInf);
    f[0] = 0.0;
    bool reachable = true;
    for (size_t i = 0; i < n; ++i) {
      if (f[i] == kInf) {
        // An unreachable prefix dooms the whole candidate: any window crossing
        // sample i-1 contains the sub-window with the same start ending at i,
        // which by cost monotonicity is no more expensive — so if some
        // partition covered sample i-1, f[i] would be finite. (The seed had
        // this guard with `&& k == n` attached, making it dead.)
        reachable = false;
        break;
      }
      const double fi = f[i];
      const std::vector<double>& times = win_times[i];
      const size_t cut = static_cast<size_t>(
          std::upper_bound(times.begin(), times.end(), tmax) - times.begin());
      // restrict lets the compiler vectorize the min: f's tail and this start's
      // time array never alias.
      const double* __restrict tp = times.data();
      double* __restrict fk = f.data() + i + 1;
      for (size_t w = 0; w < cut; ++w) {
        fk[w] = std::min(fk[w], fi + tp[w]);
      }
    }
    if (!reachable || f[n] == kInf) {
      return;
    }
    // Reconstruct and score with the *realized* max (<= tmax), which is the exact
    // Eq. 1 objective rather than the candidate upper bound. The smallest width
    // whose add reproduces f[k] bitwise is a deterministic optimal choice.
    CandidateOutcome& out = outcomes[c_idx];
    double realized_max = 0.0;
    for (size_t k = n; k > 0;) {
      const size_t wmax =
          std::min(k, static_cast<size_t>(options_.max_microbatch_size));
      size_t found = 0;
      for (size_t w = 1; w <= wmax; ++w) {
        const size_t start = k - w;
        if (w > win_times[start].size()) {
          continue;
        }
        const double t = win_times[start][w - 1];
        if (t > tmax) {
          continue;
        }
        if (f[start] + t == f[k]) {
          found = w;
          realized_max = std::max(realized_max, t);
          break;
        }
      }
      DYNAPIPE_CHECK(found >= 1);
      out.widths.push_back(static_cast<int32_t>(found));
      k -= found;
    }
    out.objective =
        (options_.num_stages - 1) * realized_max + f[n] / options_.num_replicas;
    out.feasible = true;
  });

  // Deterministic merge in ascending-t_max order: strict improvement only, so
  // ties keep the earliest (lowest) candidate — exactly the serial loop's pick.
  double best_objective = kInf;
  std::vector<int32_t> best_widths;
  for (auto& out : outcomes) {
    if (out.feasible && out.objective < best_objective) {
      best_objective = out.objective;
      best_widths = std::move(out.widths);
    }
  }
  result.candidates_tried = static_cast<int32_t>(candidates.size());
  result.stats.candidate_search_ms = ElapsedMs(search_start);
  result.stats.parallel_workers =
      options_.pool != nullptr ? std::max(1, options_.pool->num_threads()) : 1;
  const auto counters_after = cost_.CacheCounters();
  result.stats.cost_cache_hits = counters_after.first - counters_before.first;
  result.stats.cost_cache_misses = counters_after.second - counters_before.second;

  if (best_widths.empty()) {
    result.feasible = false;
    return result;
  }

  // Widths were collected back-to-front.
  std::reverse(best_widths.begin(), best_widths.end());
  size_t pos = 0;
  for (const int32_t w : best_widths) {
    std::vector<data::Sample> group(ordered.begin() + static_cast<ptrdiff_t>(pos),
                                    ordered.begin() + static_cast<ptrdiff_t>(pos + w));
    MicroBatch m = MakeMicroBatch(std::move(group));
    const Window& win = windows[pos][static_cast<size_t>(w) - 1];
    m.predicted_time_ms = win.time_ms;
    m.predicted_activation_mb = win.act_mb;
    result.micro_batches.push_back(std::move(m));
    result.max_time_ms = std::max(result.max_time_ms, win.time_ms);
    result.total_time_ms += win.time_ms;
    pos += static_cast<size_t>(w);
  }
  DYNAPIPE_CHECK(pos == n);
  result.objective_ms = (options_.num_stages - 1) * result.max_time_ms +
                        result.total_time_ms / options_.num_replicas;
  result.feasible = true;
  return result;
}

PartitionResult BruteForcePartition(const MicroBatchCostFn& cost,
                                    const DpPartitionerOptions& options,
                                    const std::vector<data::Sample>& ordered) {
  const size_t n = ordered.size();
  PartitionResult best;
  if (n == 0) {
    best.feasible = true;
    return best;
  }
  DYNAPIPE_CHECK_MSG(n <= 20, "brute force is exponential; use small inputs");
  double best_objective = kInf;
  // Bitmask b: bit k set means a split between samples k and k+1.
  for (uint64_t mask = 0; mask < (1ull << (n - 1)); ++mask) {
    double total = 0.0;
    double max_t = 0.0;
    bool ok = true;
    size_t start = 0;
    std::vector<std::pair<size_t, size_t>> ranges;
    for (size_t k = 0; k <= n - 1 && ok; ++k) {
      const bool split_here = k == n - 1 || (mask >> k & 1ull) != 0;
      if (!split_here) {
        continue;
      }
      const size_t width = k + 1 - start;
      if (width > static_cast<size_t>(options.max_microbatch_size)) {
        ok = false;
        break;
      }
      const model::MicroBatchShape shape = WindowShape(ordered, start, width);
      const double act = cost.ActivationMb(shape);
      if (options.activation_limit_mb > 0.0 && act > options.activation_limit_mb) {
        ok = false;
        break;
      }
      const double t = cost.TimeMs(shape);
      total += t;
      max_t = std::max(max_t, t);
      ranges.emplace_back(start, width);
      start = k + 1;
    }
    if (!ok) {
      continue;
    }
    const double objective =
        (options.num_stages - 1) * max_t + total / options.num_replicas;
    if (objective < best_objective) {
      best_objective = objective;
      best.micro_batches.clear();
      for (const auto& [s, w] : ranges) {
        std::vector<data::Sample> group(ordered.begin() + static_cast<ptrdiff_t>(s),
                                        ordered.begin() + static_cast<ptrdiff_t>(s + w));
        best.micro_batches.push_back(MakeMicroBatch(std::move(group)));
      }
      best.max_time_ms = max_t;
      best.total_time_ms = total;
      best.objective_ms = objective;
      best.feasible = true;
    }
  }
  return best;
}

}  // namespace dynapipe::mb
