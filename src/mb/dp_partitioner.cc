#include "src/mb/dp_partitioner.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/check.h"

namespace dynapipe::mb {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct Window {
  double time_ms = 0.0;
  double act_mb = 0.0;
};

model::MicroBatchShape WindowShape(const std::vector<data::Sample>& s, size_t start,
                                   size_t width) {
  model::MicroBatchShape shape;
  shape.num_samples = static_cast<int32_t>(width);
  for (size_t i = start; i < start + width; ++i) {
    shape.input_len = std::max(shape.input_len, s[i].input_len);
    shape.target_len = std::max(shape.target_len, s[i].target_len);
  }
  return shape;
}

}  // namespace

DpPartitioner::DpPartitioner(const MicroBatchCostFn& cost, DpPartitionerOptions options)
    : cost_(cost), options_(std::move(options)) {
  DYNAPIPE_CHECK(options_.num_stages >= 1);
  DYNAPIPE_CHECK(options_.num_replicas >= 1);
  DYNAPIPE_CHECK(options_.max_microbatch_size >= 1);
  DYNAPIPE_CHECK(options_.tmax_interval_ms > 0.0);
  DYNAPIPE_CHECK(options_.max_tmax_candidates >= 2);
}

PartitionResult DpPartitioner::Partition(
    const std::vector<data::Sample>& ordered) const {
  PartitionResult result;
  const size_t n = ordered.size();
  if (n == 0) {
    result.feasible = true;
    return result;
  }

  // --- Precompute feasible windows. windows[i][w-1] covers ordered[i .. i+w-1].
  // Window time and activation are monotone non-decreasing in w (the count grows and
  // padded lengths never shrink), so each start index has a contiguous feasible
  // range and we can stop extending at the first violation.
  std::vector<std::vector<Window>> windows(n);
  double min_single_time = kInf;
  double max_single_time = 0.0;
  double max_window_time = 0.0;
  for (size_t i = 0; i < n; ++i) {
    model::MicroBatchShape shape;
    for (size_t w = 1; i + w <= n && w <= static_cast<size_t>(options_.max_microbatch_size);
         ++w) {
      shape.num_samples = static_cast<int32_t>(w);
      shape.input_len = std::max(shape.input_len, ordered[i + w - 1].input_len);
      shape.target_len = std::max(shape.target_len, ordered[i + w - 1].target_len);
      Window win;
      win.act_mb = cost_.ActivationMb(shape);
      if (options_.activation_limit_mb > 0.0 &&
          win.act_mb > options_.activation_limit_mb) {
        break;
      }
      win.time_ms = cost_.TimeMs(shape);
      if (w == 1) {
        min_single_time = std::min(min_single_time, win.time_ms);
        max_single_time = std::max(max_single_time, win.time_ms);
      }
      max_window_time = std::max(max_window_time, win.time_ms);
      windows[i].push_back(win);
    }
    if (windows[i].empty()) {
      // A single sample exceeds the memory limit: no partition can help (§4 "the
      // training can continue ... as long as the activation of one single
      // micro-batch fits into device memory" — here it does not).
      result.feasible = false;
      return result;
    }
  }

  // --- t_max candidates: quantized distinct window times, at or above the largest
  // single-sample time (smaller values cannot cover that sample).
  std::vector<double> candidates;
  {
    const double interval = options_.tmax_interval_ms;
    std::vector<double> quantized;
    for (const auto& per_start : windows) {
      for (const auto& win : per_start) {
        if (win.time_ms + 1e-12 < max_single_time) {
          continue;
        }
        quantized.push_back(std::ceil(win.time_ms / interval) * interval);
      }
    }
    std::sort(quantized.begin(), quantized.end());
    quantized.erase(std::unique(quantized.begin(), quantized.end()), quantized.end());
    DYNAPIPE_CHECK(!quantized.empty());
    const size_t cap = static_cast<size_t>(options_.max_tmax_candidates);
    if (quantized.size() <= cap) {
      candidates = std::move(quantized);
    } else {
      // Even subsample, always keeping the extremes.
      candidates.reserve(cap);
      for (size_t k = 0; k < cap; ++k) {
        const size_t idx = k * (quantized.size() - 1) / (cap - 1);
        candidates.push_back(quantized[idx]);
      }
      candidates.erase(std::unique(candidates.begin(), candidates.end()),
                       candidates.end());
    }
  }

  // --- DP per candidate. f[k] = min total time over partitions of the first k
  // samples with every micro-batch time <= tmax; parent[k] = width of the last
  // micro-batch in an optimal partition of the first k.
  std::vector<double> f(n + 1);
  std::vector<int32_t> parent(n + 1);
  double best_objective = kInf;
  std::vector<int32_t> best_widths;

  for (const double tmax : candidates) {
    f.assign(n + 1, kInf);
    parent.assign(n + 1, 0);
    f[0] = 0.0;
    for (size_t k = 1; k <= n; ++k) {
      // Last micro-batch covers ordered[k-w .. k-1].
      const size_t wmax = std::min(k, static_cast<size_t>(options_.max_microbatch_size));
      for (size_t w = 1; w <= wmax; ++w) {
        const size_t start = k - w;
        if (w > windows[start].size()) {
          continue;  // infeasible by memory/size; wider is worse but other starts differ
        }
        const Window& win = windows[start][w - 1];
        if (win.time_ms > tmax + 1e-12) {
          continue;
        }
        if (f[start] + win.time_ms < f[k]) {
          f[k] = f[start] + win.time_ms;
          parent[k] = static_cast<int32_t>(w);
        }
      }
      if (f[k] == kInf && k == n) {
        break;
      }
    }
    if (f[n] == kInf) {
      continue;
    }
    // Reconstruct and score with the *realized* max (<= tmax), which is the exact
    // Eq. 1 objective rather than the candidate upper bound.
    std::vector<int32_t> widths;
    double realized_max = 0.0;
    for (size_t k = n; k > 0;) {
      const int32_t w = parent[k];
      DYNAPIPE_CHECK(w >= 1);
      widths.push_back(w);
      realized_max =
          std::max(realized_max, windows[k - static_cast<size_t>(w)][w - 1].time_ms);
      k -= static_cast<size_t>(w);
    }
    const double objective =
        (options_.num_stages - 1) * realized_max + f[n] / options_.num_replicas;
    if (objective < best_objective) {
      best_objective = objective;
      best_widths = std::move(widths);
    }
  }
  result.candidates_tried = static_cast<int32_t>(candidates.size());

  if (best_widths.empty()) {
    result.feasible = false;
    return result;
  }

  // Widths were collected back-to-front.
  std::reverse(best_widths.begin(), best_widths.end());
  size_t pos = 0;
  for (const int32_t w : best_widths) {
    std::vector<data::Sample> group(ordered.begin() + static_cast<ptrdiff_t>(pos),
                                    ordered.begin() + static_cast<ptrdiff_t>(pos + w));
    MicroBatch m = MakeMicroBatch(std::move(group));
    const Window& win = windows[pos][static_cast<size_t>(w) - 1];
    m.predicted_time_ms = win.time_ms;
    m.predicted_activation_mb = win.act_mb;
    result.micro_batches.push_back(std::move(m));
    result.max_time_ms = std::max(result.max_time_ms, win.time_ms);
    result.total_time_ms += win.time_ms;
    pos += static_cast<size_t>(w);
  }
  DYNAPIPE_CHECK(pos == n);
  result.objective_ms = (options_.num_stages - 1) * result.max_time_ms +
                        result.total_time_ms / options_.num_replicas;
  result.feasible = true;
  return result;
}

PartitionResult BruteForcePartition(const MicroBatchCostFn& cost,
                                    const DpPartitionerOptions& options,
                                    const std::vector<data::Sample>& ordered) {
  const size_t n = ordered.size();
  PartitionResult best;
  if (n == 0) {
    best.feasible = true;
    return best;
  }
  DYNAPIPE_CHECK_MSG(n <= 20, "brute force is exponential; use small inputs");
  double best_objective = kInf;
  // Bitmask b: bit k set means a split between samples k and k+1.
  for (uint64_t mask = 0; mask < (1ull << (n - 1)); ++mask) {
    double total = 0.0;
    double max_t = 0.0;
    bool ok = true;
    size_t start = 0;
    std::vector<std::pair<size_t, size_t>> ranges;
    for (size_t k = 0; k <= n - 1 && ok; ++k) {
      const bool split_here = k == n - 1 || (mask >> k & 1ull) != 0;
      if (!split_here) {
        continue;
      }
      const size_t width = k + 1 - start;
      if (width > static_cast<size_t>(options.max_microbatch_size)) {
        ok = false;
        break;
      }
      const model::MicroBatchShape shape = WindowShape(ordered, start, width);
      const double act = cost.ActivationMb(shape);
      if (options.activation_limit_mb > 0.0 && act > options.activation_limit_mb) {
        ok = false;
        break;
      }
      const double t = cost.TimeMs(shape);
      total += t;
      max_t = std::max(max_t, t);
      ranges.emplace_back(start, width);
      start = k + 1;
    }
    if (!ok) {
      continue;
    }
    const double objective =
        (options.num_stages - 1) * max_t + total / options.num_replicas;
    if (objective < best_objective) {
      best_objective = objective;
      best.micro_batches.clear();
      for (const auto& [s, w] : ranges) {
        std::vector<data::Sample> group(ordered.begin() + static_cast<ptrdiff_t>(s),
                                        ordered.begin() + static_cast<ptrdiff_t>(s + w));
        best.micro_batches.push_back(MakeMicroBatch(std::move(group)));
      }
      best.max_time_ms = max_t;
      best.total_time_ms = total;
      best.objective_ms = objective;
      best.feasible = true;
    }
  }
  return best;
}

}  // namespace dynapipe::mb
