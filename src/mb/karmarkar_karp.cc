#include "src/mb/karmarkar_karp.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "src/common/check.h"

namespace dynapipe::mb {
namespace {

// A partial partition: `num_groups` buckets, each a (sum, item-indices) pair, kept
// sorted by sum descending. The LDM key is the spread between largest and smallest
// bucket sums.
struct Tuple {
  std::vector<double> sums;
  std::vector<std::vector<int32_t>> items;

  double spread() const { return sums.front() - sums.back(); }
};

void SortTuple(Tuple& t) {
  const size_t k = t.sums.size();
  std::vector<size_t> order(k);
  for (size_t i = 0; i < k; ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return t.sums[a] > t.sums[b]; });
  Tuple sorted;
  sorted.sums.reserve(k);
  sorted.items.reserve(k);
  for (const size_t i : order) {
    sorted.sums.push_back(t.sums[i]);
    sorted.items.push_back(std::move(t.items[i]));
  }
  t = std::move(sorted);
}

BalanceResult FinishResult(Tuple t) {
  BalanceResult result;
  result.max_sum = t.sums.front();
  result.min_sum = t.sums.back();
  result.groups = std::move(t.items);
  return result;
}

}  // namespace

BalanceResult KarmarkarKarp(const std::vector<double>& weights, int32_t num_groups) {
  DYNAPIPE_CHECK(num_groups >= 1);
  const size_t k = static_cast<size_t>(num_groups);

  if (weights.empty()) {
    BalanceResult result;
    result.groups.resize(k);
    return result;
  }

  // Max-heap by spread: LDM always combines the two partial partitions whose
  // imbalance is largest, pairing big buckets with small ones.
  auto cmp = [](const Tuple& a, const Tuple& b) { return a.spread() < b.spread(); };
  std::priority_queue<Tuple, std::vector<Tuple>, decltype(cmp)> heap(cmp);

  for (size_t i = 0; i < weights.size(); ++i) {
    Tuple t;
    t.sums.assign(k, 0.0);
    t.items.resize(k);
    t.sums[0] = weights[i];
    t.items[0].push_back(static_cast<int32_t>(i));
    SortTuple(t);
    heap.push(std::move(t));
  }

  while (heap.size() > 1) {
    Tuple a = heap.top();
    heap.pop();
    Tuple b = heap.top();
    heap.pop();
    // Pair a's largest bucket with b's smallest, and so on.
    Tuple merged;
    merged.sums.resize(k);
    merged.items.resize(k);
    for (size_t i = 0; i < k; ++i) {
      const size_t j = k - 1 - i;
      merged.sums[i] = a.sums[i] + b.sums[j];
      merged.items[i] = std::move(a.items[i]);
      auto& src = b.items[j];
      merged.items[i].insert(merged.items[i].end(), src.begin(), src.end());
    }
    SortTuple(merged);
    heap.push(std::move(merged));
  }

  return FinishResult(heap.top());
}

BalanceResult RoundRobinBalance(const std::vector<double>& weights,
                                int32_t num_groups) {
  DYNAPIPE_CHECK(num_groups >= 1);
  const size_t k = static_cast<size_t>(num_groups);
  Tuple t;
  t.sums.assign(k, 0.0);
  t.items.resize(k);
  for (size_t i = 0; i < weights.size(); ++i) {
    t.sums[i % k] += weights[i];
    t.items[i % k].push_back(static_cast<int32_t>(i));
  }
  SortTuple(t);
  return FinishResult(std::move(t));
}

BalanceResult BruteForceBalance(const std::vector<double>& weights,
                                int32_t num_groups) {
  DYNAPIPE_CHECK(num_groups >= 1);
  DYNAPIPE_CHECK_MSG(weights.size() <= 12, "brute force is exponential");
  const size_t k = static_cast<size_t>(num_groups);
  const size_t n = weights.size();
  std::vector<size_t> assignment(n, 0);
  std::vector<size_t> best_assignment(n, 0);
  double best_max = std::numeric_limits<double>::infinity();

  // Odometer over k^n assignments.
  while (true) {
    std::vector<double> sums(k, 0.0);
    for (size_t i = 0; i < n; ++i) {
      sums[assignment[i]] += weights[i];
    }
    const double mx = *std::max_element(sums.begin(), sums.end());
    if (mx < best_max) {
      best_max = mx;
      best_assignment = assignment;
    }
    size_t pos = 0;
    while (pos < n && ++assignment[pos] == k) {
      assignment[pos] = 0;
      ++pos;
    }
    if (pos == n) {
      break;
    }
  }

  Tuple t;
  t.sums.assign(k, 0.0);
  t.items.resize(k);
  for (size_t i = 0; i < n; ++i) {
    t.sums[best_assignment[i]] += weights[i];
    t.items[best_assignment[i]].push_back(static_cast<int32_t>(i));
  }
  SortTuple(t);
  return FinishResult(std::move(t));
}

}  // namespace dynapipe::mb
