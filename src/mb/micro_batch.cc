#include "src/mb/micro_batch.h"

#include <algorithm>

#include "src/common/check.h"

namespace dynapipe::mb {

int64_t MicroBatch::real_tokens() const {
  int64_t total = 0;
  for (const auto& s : samples) {
    total += s.total_tokens();
  }
  return total;
}

int64_t MicroBatch::padded_tokens() const { return shape.padded_tokens(); }

MicroBatch MakeMicroBatch(std::vector<data::Sample> samples) {
  DYNAPIPE_CHECK(!samples.empty());
  MicroBatch m;
  m.shape.num_samples = static_cast<int32_t>(samples.size());
  for (const auto& s : samples) {
    m.shape.input_len = std::max(m.shape.input_len, s.input_len);
    m.shape.target_len = std::max(m.shape.target_len, s.target_len);
  }
  m.samples = std::move(samples);
  return m;
}

double PaddingStats::input_efficiency() const {
  return padded_input_tokens == 0
             ? 1.0
             : static_cast<double>(real_input_tokens) /
                   static_cast<double>(padded_input_tokens);
}

double PaddingStats::target_efficiency() const {
  return padded_target_tokens == 0
             ? 1.0
             : static_cast<double>(real_target_tokens) /
                   static_cast<double>(padded_target_tokens);
}

double PaddingStats::overall_efficiency() const {
  const int64_t real = real_input_tokens + real_target_tokens;
  const int64_t padded = padded_input_tokens + padded_target_tokens;
  return padded == 0 ? 1.0 : static_cast<double>(real) / static_cast<double>(padded);
}

PaddingStats ComputePaddingStats(const std::vector<MicroBatch>& micro_batches) {
  PaddingStats stats;
  for (const auto& m : micro_batches) {
    stats.padded_input_tokens +=
        int64_t{m.shape.num_samples} * m.shape.input_len;
    stats.padded_target_tokens +=
        int64_t{m.shape.num_samples} * m.shape.target_len;
    for (const auto& s : m.samples) {
      stats.real_input_tokens += s.input_len;
      stats.real_target_tokens += s.target_len;
    }
  }
  return stats;
}

}  // namespace dynapipe::mb
