// Multi-way number partitioning via the Karmarkar–Karp largest differencing method.
//
// After the DP produces micro-batches for the whole mini-batch, hybrid data+pipeline
// training must spread them over D data-parallel replicas so the *maximum* total
// micro-batch time across replicas is small (§4 "Balance data parallel model
// replicas"). The paper solves this subset-partition step approximately with the
// Karmarkar–Karp algorithm; this is the k-way generalization (largest differencing
// over k-tuples of subset sums).
#ifndef DYNAPIPE_SRC_MB_KARMARKAR_KARP_H_
#define DYNAPIPE_SRC_MB_KARMARKAR_KARP_H_

#include <cstdint>
#include <vector>

namespace dynapipe::mb {

struct BalanceResult {
  // groups[d] holds indices into the input weight vector assigned to replica d.
  std::vector<std::vector<int32_t>> groups;
  double max_sum = 0.0;
  double min_sum = 0.0;

  double imbalance() const { return max_sum - min_sum; }
};

// Partitions `weights` into `num_groups` sets minimizing (heuristically) the largest
// set sum. Every group is present in the output even if empty.
BalanceResult KarmarkarKarp(const std::vector<double>& weights, int32_t num_groups);

// Baseline used in tests/ablation: round-robin assignment in input order.
BalanceResult RoundRobinBalance(const std::vector<double>& weights, int32_t num_groups);

// Exhaustive optimum for small inputs (tests only; O(num_groups^N)).
BalanceResult BruteForceBalance(const std::vector<double>& weights, int32_t num_groups);

}  // namespace dynapipe::mb

#endif  // DYNAPIPE_SRC_MB_KARMARKAR_KARP_H_
