// Dynamic-programming micro-batch construction (§4).
//
// Given an *ordered* sample list S, choose split points so consecutive runs form
// micro-batches minimizing the pipeline iteration-time model (Eq. 1):
//
//     (c - 1) * max_i t(M_i)  +  (1/D) * sum_i t(M_i)
//
// where c is the number of pipeline stages and D the number of data-parallel
// replicas (D = 1 recovers the single-pipeline objective exactly). The recurrence
// (Eq. 2) fixes an upper bound t_max on the largest micro-batch time and computes
//
//     f(n; t_max) = min_{i<n} { f(i; t_max) + t(S[i+1..n]) : t(S[i+1..n]) <= t_max }
//
// t_max candidates are the O(N^2) distinct window times, quantized to a fixed
// interval (the paper uses 5 microseconds) and deduplicated; for each candidate the
// DP runs in O(N * max window width) because window time is monotone in window
// extension. Micro-batches whose activation memory exceeds the per-micro-batch
// limit are excluded inside the recurrence, which is how the paper folds the memory
// constraint into the DP after the sliding-window coupling breaks optimal
// substructure.
#ifndef DYNAPIPE_SRC_MB_DP_PARTITIONER_H_
#define DYNAPIPE_SRC_MB_DP_PARTITIONER_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/data/dataset.h"
#include "src/mb/micro_batch.h"
#include "src/model/shapes.h"

namespace dynapipe {
class ThreadPool;
}  // namespace dynapipe

namespace dynapipe::mb {

// Cost oracle for a candidate micro-batch. Backed by the profiled PipelineCostModel
// in production (bottleneck-stage fwd+bwd time and activation memory) and by
// synthetic functions in tests. Implementations must be thread-safe: the
// partitioner issues queries from pool workers when given a ThreadPool.
class MicroBatchCostFn {
 public:
  virtual ~MicroBatchCostFn() = default;
  virtual double TimeMs(const model::MicroBatchShape& shape) const = 0;
  virtual double ActivationMb(const model::MicroBatchShape& shape) const = 0;
  // One feasible-window probe, the DP precompute's hot call: returns false when
  // the activation footprint exceeds `limit` (if limit > 0; *time_ms is then
  // untouched), otherwise fills both values. The default preserves the
  // laziness of the split calls — time is never computed for over-limit
  // windows; memoizing oracles override it to serve both from a single lookup.
  virtual bool WindowCosts(const model::MicroBatchShape& shape, double limit,
                           double* time_ms, double* act_mb) const {
    *act_mb = ActivationMb(shape);
    if (limit > 0.0 && *act_mb > limit) {
      return false;
    }
    *time_ms = TimeMs(shape);
    return true;
  }
  // Instrumentation hook: oracles backed by a memoizing cache report cumulative
  // (hits, misses) so PartitionResult can carry per-call deltas; oracles
  // without a cache keep the default zeros. A "query" is one TimeMs,
  // ActivationMb, or WindowCosts call.
  virtual std::pair<int64_t, int64_t> CacheCounters() const { return {0, 0}; }
};

// One feasible window's cost, as the precompute stores it: windows[i][w-1]
// covers ordered[i .. i+w-1].
struct WindowCost {
  double time_ms = 0.0;
  double act_mb = 0.0;
};

// Canonical packed (input_len, target_len) pair — the DP only ever reads
// lengths, so two samples with equal packed lengths are interchangeable for
// every value the partitioner computes.
inline uint64_t PackedSampleLength(const data::Sample& s) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(s.input_len)) << 32) |
         static_cast<uint64_t>(static_cast<uint32_t>(s.target_len));
}

// Cross-iteration cache of DP window tables and forward-DP rows, keyed by
// canonical length-run *prefixes* (ISSUE 9 / ROADMAP "incremental planning").
//
// Why prefixes: planning orders samples deterministically (sort-by-length),
// so a near-miss batch — one task swapped, a sample added or dropped — shares
// a long sorted prefix with a recently planned batch. Everything the DP
// computes from only that prefix is bitwise reusable:
//
//   - window row i (all widths from start i) reads samples [i, i + max_mb),
//     so it is reusable when i + max_microbatch_size <= P, where P is the
//     length of the longest common prefix of the two batches' packed lengths
//     — or unconditionally when the batches are identical (P == both sizes);
//   - a forward-DP row f for candidate value t has f[k] determined by samples
//     [0, k) alone, so f[0..P] copies over bitwise and only starts
//     i >= P + 1 - max_mb need replaying. Candidate rows match by the *exact
//     bit pattern* of the candidate value (quantized candidates are
//     q * interval, so shared window times reproduce identical doubles). A
//     cached row that aborted (unreachable prefix) at position <= P proves
//     the new DP aborts identically — the candidate is skipped outright.
//
// Entries are found by a sorted-run rolling hash: an entry's packed lengths
// decompose into runs (value, count); for each run index j the entry is
// indexed under hash(context, runs[0..j-1] with counts, run j's value
// count-free). A lookup walks its own runs from the longest down, probing
// that hash, and verifies candidates by direct prefix comparison (collisions
// are harmless), so the longest shared run-prefix is found without comparing
// against every entry.
//
// Invalidation: entries are keyed by a caller-supplied `context` hash that
// must fold in everything the window table depends on — the cost oracle
// identity, recompute mode, activation limit, and the DP knobs (see
// IterationPlanner, which fingerprints its cost model into the context).
// Changing any of those changes the context, so stale entries can never be
// returned; `Invalidate()` additionally drops everything for explicit resets
// (tested by planning_incremental_test).
//
// Thread-safety: a mutex guards the index and LRU list; entries themselves
// are immutable once inserted and handed out as shared_ptr<const Entry>, so
// concurrent Partition calls (and pool workers reading a looked-up entry)
// race on nothing. Reuse only ever *copies* bitwise-identical values, so
// plans stay bit-identical with the cache on, off, shared, or evicted.
class PrefixWindowCache {
 public:
  struct Options {
    // Byte bound on cached tables (window rows + DP rows), evict-by-LRU.
    size_t max_bytes = size_t{32} << 20;
  };

  // One candidate's forward-DP row. f[k] = min total time over partitions of
  // the first k samples with every micro-batch time <= tmax + 1e-12. When
  // `aborted`, the DP stopped at start `abort_pos` (unreachable prefix):
  // f[0..abort_pos] are final, later entries are not.
  struct CandidateRow {
    double tmax = 0.0;  // exact candidate value; rows match on its bit pattern
    std::vector<double> f;
    bool aborted = false;
    size_t abort_pos = 0;
  };

  struct Entry {
    uint64_t context = 0;
    std::vector<uint64_t> lengths;  // packed pairs, DP order
    std::vector<std::vector<WindowCost>> windows;
    std::vector<CandidateRow> rows;
    size_t bytes = 0;  // filled by Insert
  };

  struct Stats {
    int64_t hits = 0;  // lookups that returned a usable entry
    int64_t misses = 0;
    int64_t insertions = 0;
    int64_t evictions = 0;
    int64_t bytes = 0;  // current footprint
  };

  PrefixWindowCache();
  explicit PrefixWindowCache(Options options);

  // Longest-shared-prefix lookup. Returns the entry sharing the longest
  // common packed-length prefix with `lengths` (ties: the longer run
  // extension, then the most recently used), its prefix length in
  // *prefix_len, and refreshes the entry's LRU position. Matches whose
  // common prefix is shorter than `min_prefix` count as misses.
  std::shared_ptr<const Entry> Lookup(uint64_t context,
                                      const std::vector<uint64_t>& lengths,
                                      size_t min_prefix, size_t* prefix_len);

  // Inserts a finished table (entry->bytes is computed here). The oldest
  // entries are evicted until the byte bound holds again; the newest entry
  // always stays.
  void Insert(std::shared_ptr<Entry> entry);

  // Recording-backoff advice for the miss path. Building an entry costs real
  // time (an O(n) DP-row copy per candidate), which is pure waste in regimes
  // where lookups never hit (unquantized batches whose sorted prefixes never
  // recur). The first few misses per context always record — a cold cache
  // must seed entries before it can ever hit — but once a context's miss
  // streak outgrows that burst, recording drops to a periodic refresh so a
  // hostile regime pays almost nothing while a drifted-but-cacheable one
  // still re-seeds. Hits reset the streak. Purely a perf policy: what is or
  // is not recorded can never change plan bytes.
  bool ShouldRecord(uint64_t context) const;

  // Drops every entry (explicit cost-oracle / config reset).
  void Invalidate();

  Stats stats() const;
  size_t size() const;

 private:
  struct Run {
    uint64_t value = 0;
    size_t count = 0;
  };
  struct Slot;
  using SlotList = std::list<Slot>;
  struct Slot {
    std::shared_ptr<const Entry> entry;
    std::vector<Run> runs;
    std::vector<uint64_t> run_keys;  // probe hash per run index
  };

  static std::vector<Run> DecomposeRuns(const std::vector<uint64_t>& lengths);
  void EvictIfNeededLocked();

  Options options_;
  mutable std::mutex mu_;
  SlotList slots_;  // front = most recently used
  // Probe hash -> slots indexed under it. A slot appears once per run.
  std::unordered_map<uint64_t, std::vector<SlotList::iterator>> index_;
  Stats stats_;
  // Consecutive lookup misses per context, for ShouldRecord's backoff.
  mutable std::unordered_map<uint64_t, int64_t> miss_streak_;
};

struct DpPartitionerOptions {
  // Pipeline stages c in Eq. 1.
  int32_t num_stages = 1;
  // Data-parallel replicas D (scales the sum term; micro-batches are spread over
  // replicas by the Karmarkar–Karp step afterwards).
  int32_t num_replicas = 1;
  // Per-micro-batch activation memory limit; <= 0 disables the constraint.
  double activation_limit_mb = 0.0;
  // Hard cap on samples per micro-batch (bounds DP window width).
  int32_t max_microbatch_size = 512;
  // t_max candidate quantization interval. The paper samples candidates 5us apart;
  // that is exact but slow, so the default is coarser and the Fig.-level benches
  // sweep it (bench_abl_tmax_sampling).
  double tmax_interval_ms = 0.05;
  // Upper bound on candidates actually tried (evenly subsampled if exceeded).
  int32_t max_tmax_candidates = 512;
  // Fan the per-t_max DPs (independent by construction) over this pool; null
  // runs them serially. Output is bit-identical either way: candidate outcomes
  // land in per-candidate slots and are merged in ascending-t_max order with
  // the same strict-improvement rule the serial loop applies, so ties go to
  // the lowest t_max regardless of which worker finished first.
  ThreadPool* pool = nullptr;
  // Cross-iteration window/DP-row reuse (see PrefixWindowCache). Null keeps
  // every call cold. The context must change whenever the cost oracle or any
  // knob above that shapes the window table changes — the cache trusts it.
  PrefixWindowCache* prefix_cache = nullptr;
  uint64_t prefix_cache_context = 0;
  // Content-addressed window-row memoization within a call. Row i depends only
  // on the packed lengths of samples [i, i + max_microbatch_size), so rows
  // with identical content are bitwise equal and only the first is computed;
  // the rest copy it. Quantized batches collapse into long equal-length runs
  // where most rows repeat, which is where the precompute — the dominant
  // planning phase — actually goes. Off by default so the cold path stays the
  // byte-for-byte baseline; the planner turns it on with incremental planning.
  bool dedup_window_rows = false;
  // Warm-start seeds: DP-order micro-batch widths of previous solutions for
  // similar batches (this planner's last iteration, a near-miss PlanCache
  // entry, a neighboring grid-search config). Each seed is revalidated
  // against *this* batch's window table; valid seeds yield an upper bound on
  // the optimal Eq. 1 objective that prunes t_max candidates whose lower
  // bound strictly exceeds it. Pruning never changes the winner (the bound
  // is conservative and the merge is strict-improvement), so plans stay
  // bit-identical with seeds present or absent.
  std::vector<std::vector<int32_t>> warm_start_seeds;
};

// Per-call instrumentation: where planning time went and how well the cost
// cache absorbed queries (what bench_fig17_planning_time / bench_micro_planner
// report without re-instrumenting the planner).
struct PartitionStats {
  // Phase 1: feasible-window precompute (the cost-oracle-bound part).
  double window_precompute_ms = 0.0;
  // Phase 2: per-t_max DPs + reconstruction + merge.
  double candidate_search_ms = 0.0;
  // Cost-oracle cache activity during this call (zeros for uncached oracles).
  int64_t cost_cache_hits = 0;
  int64_t cost_cache_misses = 0;
  // Worker threads the candidate sweep could draw on (1 = serial).
  int32_t parallel_workers = 1;
  // Incremental planning (zeros when DpPartitionerOptions::prefix_cache is
  // null): whether the prefix cache supplied a shared-prefix entry, and how
  // much of the precompute/DP work it absorbed.
  bool prefix_cache_hit = false;
  int64_t prefix_window_rows_reused = 0;
  int64_t prefix_f_rows_reused = 0;
  // Window rows whose content matched an earlier row in the same batch and
  // were copied instead of recomputed (dedup_window_rows).
  int64_t window_rows_deduped = 0;
  // t_max candidates skipped because a warm-start seed's upper bound proved
  // they cannot beat the winner.
  int64_t warmstart_pruned = 0;
};

struct PartitionResult {
  bool feasible = false;
  std::vector<MicroBatch> micro_batches;
  // Realized max and sum of micro-batch times (cost-model units).
  double max_time_ms = 0.0;
  double total_time_ms = 0.0;
  // Realized Eq. 1 objective.
  double objective_ms = 0.0;
  int32_t candidates_tried = 0;
  PartitionStats stats;
};

class DpPartitioner {
 public:
  DpPartitioner(const MicroBatchCostFn& cost, DpPartitionerOptions options);

  // `ordered` must already be in planning order (see OrderSamples).
  PartitionResult Partition(const std::vector<data::Sample>& ordered) const;

 private:
  const MicroBatchCostFn& cost_;
  DpPartitionerOptions options_;
};

// Reference implementation: exhaustive search over all 2^(N-1) consecutive
// partitions. Exponential; used by tests to validate DP optimality on small inputs.
PartitionResult BruteForcePartition(const MicroBatchCostFn& cost,
                                    const DpPartitionerOptions& options,
                                    const std::vector<data::Sample>& ordered);

}  // namespace dynapipe::mb

#endif  // DYNAPIPE_SRC_MB_DP_PARTITIONER_H_
