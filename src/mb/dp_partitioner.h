// Dynamic-programming micro-batch construction (§4).
//
// Given an *ordered* sample list S, choose split points so consecutive runs form
// micro-batches minimizing the pipeline iteration-time model (Eq. 1):
//
//     (c - 1) * max_i t(M_i)  +  (1/D) * sum_i t(M_i)
//
// where c is the number of pipeline stages and D the number of data-parallel
// replicas (D = 1 recovers the single-pipeline objective exactly). The recurrence
// (Eq. 2) fixes an upper bound t_max on the largest micro-batch time and computes
//
//     f(n; t_max) = min_{i<n} { f(i; t_max) + t(S[i+1..n]) : t(S[i+1..n]) <= t_max }
//
// t_max candidates are the O(N^2) distinct window times, quantized to a fixed
// interval (the paper uses 5 microseconds) and deduplicated; for each candidate the
// DP runs in O(N * max window width) because window time is monotone in window
// extension. Micro-batches whose activation memory exceeds the per-micro-batch
// limit are excluded inside the recurrence, which is how the paper folds the memory
// constraint into the DP after the sliding-window coupling breaks optimal
// substructure.
#ifndef DYNAPIPE_SRC_MB_DP_PARTITIONER_H_
#define DYNAPIPE_SRC_MB_DP_PARTITIONER_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/data/dataset.h"
#include "src/mb/micro_batch.h"
#include "src/model/shapes.h"

namespace dynapipe {
class ThreadPool;
}  // namespace dynapipe

namespace dynapipe::mb {

// Cost oracle for a candidate micro-batch. Backed by the profiled PipelineCostModel
// in production (bottleneck-stage fwd+bwd time and activation memory) and by
// synthetic functions in tests. Implementations must be thread-safe: the
// partitioner issues queries from pool workers when given a ThreadPool.
class MicroBatchCostFn {
 public:
  virtual ~MicroBatchCostFn() = default;
  virtual double TimeMs(const model::MicroBatchShape& shape) const = 0;
  virtual double ActivationMb(const model::MicroBatchShape& shape) const = 0;
  // One feasible-window probe, the DP precompute's hot call: returns false when
  // the activation footprint exceeds `limit` (if limit > 0; *time_ms is then
  // untouched), otherwise fills both values. The default preserves the
  // laziness of the split calls — time is never computed for over-limit
  // windows; memoizing oracles override it to serve both from a single lookup.
  virtual bool WindowCosts(const model::MicroBatchShape& shape, double limit,
                           double* time_ms, double* act_mb) const {
    *act_mb = ActivationMb(shape);
    if (limit > 0.0 && *act_mb > limit) {
      return false;
    }
    *time_ms = TimeMs(shape);
    return true;
  }
  // Instrumentation hook: oracles backed by a memoizing cache report cumulative
  // (hits, misses) so PartitionResult can carry per-call deltas; oracles
  // without a cache keep the default zeros. A "query" is one TimeMs,
  // ActivationMb, or WindowCosts call.
  virtual std::pair<int64_t, int64_t> CacheCounters() const { return {0, 0}; }
};

struct DpPartitionerOptions {
  // Pipeline stages c in Eq. 1.
  int32_t num_stages = 1;
  // Data-parallel replicas D (scales the sum term; micro-batches are spread over
  // replicas by the Karmarkar–Karp step afterwards).
  int32_t num_replicas = 1;
  // Per-micro-batch activation memory limit; <= 0 disables the constraint.
  double activation_limit_mb = 0.0;
  // Hard cap on samples per micro-batch (bounds DP window width).
  int32_t max_microbatch_size = 512;
  // t_max candidate quantization interval. The paper samples candidates 5us apart;
  // that is exact but slow, so the default is coarser and the Fig.-level benches
  // sweep it (bench_abl_tmax_sampling).
  double tmax_interval_ms = 0.05;
  // Upper bound on candidates actually tried (evenly subsampled if exceeded).
  int32_t max_tmax_candidates = 512;
  // Fan the per-t_max DPs (independent by construction) over this pool; null
  // runs them serially. Output is bit-identical either way: candidate outcomes
  // land in per-candidate slots and are merged in ascending-t_max order with
  // the same strict-improvement rule the serial loop applies, so ties go to
  // the lowest t_max regardless of which worker finished first.
  ThreadPool* pool = nullptr;
};

// Per-call instrumentation: where planning time went and how well the cost
// cache absorbed queries (what bench_fig17_planning_time / bench_micro_planner
// report without re-instrumenting the planner).
struct PartitionStats {
  // Phase 1: feasible-window precompute (the cost-oracle-bound part).
  double window_precompute_ms = 0.0;
  // Phase 2: per-t_max DPs + reconstruction + merge.
  double candidate_search_ms = 0.0;
  // Cost-oracle cache activity during this call (zeros for uncached oracles).
  int64_t cost_cache_hits = 0;
  int64_t cost_cache_misses = 0;
  // Worker threads the candidate sweep could draw on (1 = serial).
  int32_t parallel_workers = 1;
};

struct PartitionResult {
  bool feasible = false;
  std::vector<MicroBatch> micro_batches;
  // Realized max and sum of micro-batch times (cost-model units).
  double max_time_ms = 0.0;
  double total_time_ms = 0.0;
  // Realized Eq. 1 objective.
  double objective_ms = 0.0;
  int32_t candidates_tried = 0;
  PartitionStats stats;
};

class DpPartitioner {
 public:
  DpPartitioner(const MicroBatchCostFn& cost, DpPartitionerOptions options);

  // `ordered` must already be in planning order (see OrderSamples).
  PartitionResult Partition(const std::vector<data::Sample>& ordered) const;

 private:
  const MicroBatchCostFn& cost_;
  DpPartitionerOptions options_;
};

// Reference implementation: exhaustive search over all 2^(N-1) consecutive
// partitions. Exponential; used by tests to validate DP optimality on small inputs.
PartitionResult BruteForcePartition(const MicroBatchCostFn& cost,
                                    const DpPartitionerOptions& options,
                                    const std::vector<data::Sample>& ordered);

}  // namespace dynapipe::mb

#endif  // DYNAPIPE_SRC_MB_DP_PARTITIONER_H_
