// Sample ordering within a mini-batch (§4 "Determine the order of samples").
//
// Before the dynamic program groups *consecutive* samples into micro-batches, the
// mini-batch is reordered so neighbours have similar lengths:
//  - kSortByLength: sort by input length, tie-break by target length. Optimal for
//    decoder-only models; the paper's default.
//  - kTsp: treat (input_len, target_len) as 2D points and find a short visiting
//    order (nearest-neighbour construction + 2-opt improvement) — the paper's
//    TSP-solver alternative for encoder-decoder models.
// Reordering only permutes samples *within* the mini-batch, preserving the
// mathematical equivalence of training (§9).
#ifndef DYNAPIPE_SRC_MB_ORDERING_H_
#define DYNAPIPE_SRC_MB_ORDERING_H_

#include <vector>

#include "src/data/dataset.h"

namespace dynapipe::mb {

enum class OrderingMethod { kSortByLength, kTsp };

// Returns the samples in planning order.
std::vector<data::Sample> OrderSamples(std::vector<data::Sample> samples,
                                       OrderingMethod method);

// Total adjacent-pair L1 distance in (input_len, target_len) space — the TSP tour
// objective; exposed for tests and the ordering-quality ablation.
double TourCost(const std::vector<data::Sample>& samples);

}  // namespace dynapipe::mb

#endif  // DYNAPIPE_SRC_MB_ORDERING_H_
