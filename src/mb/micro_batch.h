// Micro-batch: a group of samples padded to a common shape.
#ifndef DYNAPIPE_SRC_MB_MICRO_BATCH_H_
#define DYNAPIPE_SRC_MB_MICRO_BATCH_H_

#include <cstdint>
#include <vector>

#include "src/data/dataset.h"
#include "src/model/shapes.h"

namespace dynapipe::mb {

struct MicroBatch {
  std::vector<data::Sample> samples;
  // Padded tensor shape: (|samples|, max input_len, max target_len).
  model::MicroBatchShape shape;
  // Planner predictions attached at construction (cost-model units).
  double predicted_time_ms = 0.0;
  double predicted_activation_mb = 0.0;

  int64_t real_tokens() const;    // non-padding tokens
  int64_t padded_tokens() const;  // shape.padded_tokens()
};

// Builds a MicroBatch from samples (shape = element-wise max of lengths).
MicroBatch MakeMicroBatch(std::vector<data::Sample> samples);

// Aggregate padding efficiency: real / padded tokens over a set of micro-batches
// (the paper's Fig. 4/15 metric). Encoder and decoder sides are reported separately
// for encoder–decoder models.
struct PaddingStats {
  int64_t real_input_tokens = 0;
  int64_t padded_input_tokens = 0;
  int64_t real_target_tokens = 0;
  int64_t padded_target_tokens = 0;

  double input_efficiency() const;
  double target_efficiency() const;
  double overall_efficiency() const;
};

PaddingStats ComputePaddingStats(const std::vector<MicroBatch>& micro_batches);

}  // namespace dynapipe::mb

#endif  // DYNAPIPE_SRC_MB_MICRO_BATCH_H_
