// Synthetic FLANv2-like dataset generator.
//
// The paper evaluates on the FLANv2 zero-shot mixture (1836 tasks, downsampled to
// 100K samples), whose input-length histogram (Fig. 1b) is extremely heavy-tailed:
// most samples are short (tens to hundreds of tokens — QA, entailment, grammar), a
// large minority are long (summarization ~1000 tokens), and a thin tail reaches tens
// of thousands of tokens. We reproduce that shape with a mixture of per-task
// log-normal length distributions spanning four qualitative task families:
//
//   short-input tasks    (grammar acceptability, sentiment; ~30–80 tokens)
//   medium-input tasks   (QA, translation; ~100–400 tokens)
//   long-input tasks     (summarization, information extraction; ~700–2000 tokens)
//   very-long-tail tasks (multi-document tasks; thousands to tens of thousands)
//
// The planner only ever sees (input_len, target_len) pairs, so matching this
// distribution reproduces the paper's entire optimization problem.
#ifndef DYNAPIPE_SRC_DATA_FLAN_GENERATOR_H_
#define DYNAPIPE_SRC_DATA_FLAN_GENERATOR_H_

#include <cstdint>

#include "src/data/dataset.h"

namespace dynapipe::data {

struct FlanGeneratorOptions {
  uint64_t seed = 42;
  // Number of samples to generate (the paper downsamples FLANv2 to 100K).
  int64_t num_samples = 100'000;
  // Number of distinct tasks across the four families (FLANv2 has 1836; a few dozen
  // is enough to reproduce the mixture statistics at our scale).
  int32_t num_tasks = 48;
  // Hard cap applied at generation (Fig. 1b truncates its x axis at 65536).
  int32_t length_cap = 65'536;
};

// Builds the task mixture and samples a dataset from it. Deterministic in the seed.
Dataset GenerateFlanLikeDataset(const FlanGeneratorOptions& options);

// The task mixture alone (exposed for tests and custom sampling).
std::vector<TaskSpec> MakeFlanLikeTaskMixture(int32_t num_tasks, uint64_t seed);

}  // namespace dynapipe::data

#endif  // DYNAPIPE_SRC_DATA_FLAN_GENERATOR_H_
