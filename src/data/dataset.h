// Multi-task dataset abstractions.
//
// DynaPipe's planner consumes only the token lengths of each training sample: the
// encoder (input) sequence length and, for encoder–decoder models, the decoder
// (target) sequence length. A Sample carries those lengths plus provenance (task id)
// so padding/packing efficiency and task-mixture statistics can be reported.
#ifndef DYNAPIPE_SRC_DATA_DATASET_H_
#define DYNAPIPE_SRC_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

namespace dynapipe::data {

struct Sample {
  // Unique id within a dataset (index order == generation order).
  uint64_t id = 0;
  // Which task/dataset in the mixture produced this sample.
  int32_t task_id = 0;
  // Input (encoder) sequence length, in tokens. For decoder-only models the full
  // sample (prompt + response) lives here and target_len is 0.
  int32_t input_len = 0;
  // Target (decoder) sequence length, in tokens. 0 for decoder-only models.
  int32_t target_len = 0;

  int64_t total_tokens() const { return int64_t{input_len} + int64_t{target_len}; }
};

// A task in the mixture (e.g., summarization, translation, grammar acceptability).
// Lengths are drawn from log-normal distributions, which match the long-tailed
// per-task length histograms of instruction-tuning mixtures (Fig. 1).
struct TaskSpec {
  std::string name;
  // Log-normal parameters for the input sequence length.
  double input_log_mean = 4.0;
  double input_log_stddev = 0.5;
  // Log-normal parameters for the target sequence length.
  double target_log_mean = 3.0;
  double target_log_stddev = 0.5;
  // Relative sampling weight in the mixture.
  double mixture_weight = 1.0;
};

class Dataset {
 public:
  Dataset() = default;
  Dataset(std::vector<TaskSpec> tasks, std::vector<Sample> samples);

  const std::vector<Sample>& samples() const { return samples_; }
  const std::vector<TaskSpec>& tasks() const { return tasks_; }
  size_t size() const { return samples_.size(); }

  // Sum of all (non-padding) tokens in the dataset, the denominator-free part of the
  // paper's throughput metric (§8 "Metrics").
  int64_t total_tokens() const;

  // Tokens after clamping every sequence at max_seq_len (the truncation the paper
  // applies when scaling maximum sequence length, §8.1).
  int64_t total_tokens_truncated(int32_t max_input_len, int32_t max_target_len) const;

  // Per-dataset length statistics used by benches.
  int32_t max_input_len() const;
  int32_t max_target_len() const;
  double mean_input_len() const;

 private:
  std::vector<TaskSpec> tasks_;
  std::vector<Sample> samples_;
};

// Returns a copy of `s` with sequence lengths clamped to the given maxima
// (truncation; maxima <= 0 mean "no limit").
Sample Truncate(const Sample& s, int32_t max_input_len, int32_t max_target_len);

}  // namespace dynapipe::data

#endif  // DYNAPIPE_SRC_DATA_DATASET_H_
