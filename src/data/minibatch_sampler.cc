#include "src/data/minibatch_sampler.h"

#include <numeric>

#include "src/common/check.h"

namespace dynapipe::data {

MiniBatchSampler::MiniBatchSampler(const Dataset& dataset,
                                   const MiniBatchSamplerOptions& options)
    : dataset_(dataset), options_(options) {
  DYNAPIPE_CHECK(options_.global_batch_tokens > 0);
  DYNAPIPE_CHECK(dataset_.size() > 0);
  order_.resize(dataset_.size());
  std::iota(order_.begin(), order_.end(), 0u);
  Rng rng(options_.seed);
  rng.Shuffle(order_);
}

bool MiniBatchSampler::HasNext() const { return cursor_ < order_.size(); }

std::vector<Sample> MiniBatchSampler::Next() {
  DYNAPIPE_CHECK(HasNext());
  std::vector<Sample> batch;
  int64_t tokens = 0;
  while (cursor_ < order_.size()) {
    Sample s = Truncate(dataset_.samples()[order_[cursor_]], options_.max_input_len,
                        options_.max_target_len);
    if (!batch.empty() && tokens + s.total_tokens() > options_.global_batch_tokens) {
      break;
    }
    batch.push_back(s);
    tokens += s.total_tokens();
    ++cursor_;
    if (tokens >= options_.global_batch_tokens) {
      break;
    }
  }
  return batch;
}

int64_t MiniBatchSampler::CountBatchesInEpoch() const {
  MiniBatchSampler clone(dataset_, options_);
  int64_t n = 0;
  while (clone.HasNext()) {
    clone.Next();
    ++n;
  }
  return n;
}

void MiniBatchSampler::Reset() { cursor_ = 0; }

}  // namespace dynapipe::data
