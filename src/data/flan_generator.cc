#include "src/data/flan_generator.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "src/common/check.h"
#include "src/common/rng.h"

namespace dynapipe::data {
namespace {

struct TaskFamily {
  const char* name;
  // Fraction of tasks in this family.
  double task_fraction;
  // Fraction of *samples* drawn from this family (mixture weight).
  double sample_fraction;
  // Range of log-normal median input lengths for tasks in this family.
  double input_median_lo;
  double input_median_hi;
  double input_log_stddev;
  // Target lengths relative to family (absolute medians).
  double target_median_lo;
  double target_median_hi;
  double target_log_stddev;
};

// Family parameters tuned so the aggregate input-length histogram matches Fig. 1b:
// a bulk between ~30 and ~500 tokens, a secondary mass near 1000 (CNN/DailyMail-style
// summarization averages 977.73 tokens per the paper), and a *thin* tail into the
// tens of thousands — in FLANv2 sequences beyond ~10K tokens are vanishingly rare
// (tens of counts on Fig. 1b's log axis), which is why DynaPipe's cost tracks the
// average length while packing's tracks the maximum.
constexpr TaskFamily kFamilies[] = {
    {"short", 0.40, 0.45, 30.0, 90.0, 0.45, 4.0, 12.0, 0.5},
    {"medium", 0.35, 0.38, 100.0, 400.0, 0.55, 12.0, 60.0, 0.6},
    {"long", 0.20, 0.155, 700.0, 2000.0, 0.60, 40.0, 160.0, 0.6},
    {"xlong", 0.05, 0.015, 2500.0, 8000.0, 0.90, 80.0, 300.0, 0.7},
};

}  // namespace

std::vector<TaskSpec> MakeFlanLikeTaskMixture(int32_t num_tasks, uint64_t seed) {
  DYNAPIPE_CHECK(num_tasks >= 4);
  Rng rng(seed);
  std::vector<TaskSpec> tasks;
  tasks.reserve(static_cast<size_t>(num_tasks));
  int32_t assigned = 0;
  for (size_t f = 0; f < std::size(kFamilies); ++f) {
    const TaskFamily& fam = kFamilies[f];
    int32_t count = (f + 1 == std::size(kFamilies))
                        ? num_tasks - assigned
                        : std::max<int32_t>(
                              1, static_cast<int32_t>(std::round(
                                     fam.task_fraction * num_tasks)));
    count = std::min(count, num_tasks - assigned);
    for (int32_t i = 0; i < count; ++i) {
      TaskSpec task;
      task.name = std::string(fam.name) + "_" + std::to_string(i);
      const double input_median =
          rng.NextDouble(fam.input_median_lo, fam.input_median_hi);
      const double target_median =
          rng.NextDouble(fam.target_median_lo, fam.target_median_hi);
      task.input_log_mean = std::log(input_median);
      task.input_log_stddev = fam.input_log_stddev;
      task.target_log_mean = std::log(target_median);
      task.target_log_stddev = fam.target_log_stddev;
      // Split the family's sample share evenly among its tasks, with mild jitter so
      // tasks are not perfectly balanced (real mixtures are not).
      task.mixture_weight =
          fam.sample_fraction / count * rng.NextDouble(0.6, 1.4);
      tasks.push_back(std::move(task));
    }
    assigned += count;
  }
  DYNAPIPE_CHECK(assigned == num_tasks);
  return tasks;
}

Dataset GenerateFlanLikeDataset(const FlanGeneratorOptions& options) {
  DYNAPIPE_CHECK(options.num_samples > 0);
  Rng rng(options.seed);
  std::vector<TaskSpec> tasks = MakeFlanLikeTaskMixture(options.num_tasks, rng.NextU64());

  // Cumulative mixture weights for task sampling.
  std::vector<double> cdf(tasks.size());
  double total_weight = 0.0;
  for (size_t i = 0; i < tasks.size(); ++i) {
    total_weight += tasks[i].mixture_weight;
    cdf[i] = total_weight;
  }

  std::vector<Sample> samples;
  samples.reserve(static_cast<size_t>(options.num_samples));
  for (int64_t n = 0; n < options.num_samples; ++n) {
    const double u = rng.NextDouble() * total_weight;
    const size_t task_id = static_cast<size_t>(
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
    const TaskSpec& task = tasks[task_id];
    Sample s;
    s.id = static_cast<uint64_t>(n);
    s.task_id = static_cast<int32_t>(task_id);
    const double in_len = rng.NextLogNormal(task.input_log_mean, task.input_log_stddev);
    const double tg_len =
        rng.NextLogNormal(task.target_log_mean, task.target_log_stddev);
    s.input_len = std::clamp(static_cast<int32_t>(std::lround(in_len)), 1,
                             options.length_cap);
    s.target_len = std::clamp(static_cast<int32_t>(std::lround(tg_len)), 1,
                              options.length_cap);
    samples.push_back(s);
  }
  return Dataset(std::move(tasks), std::move(samples));
}

}  // namespace dynapipe::data
