#include "src/data/dataset.h"

#include <algorithm>

namespace dynapipe::data {

Dataset::Dataset(std::vector<TaskSpec> tasks, std::vector<Sample> samples)
    : tasks_(std::move(tasks)), samples_(std::move(samples)) {}

int64_t Dataset::total_tokens() const {
  int64_t total = 0;
  for (const auto& s : samples_) {
    total += s.total_tokens();
  }
  return total;
}

int64_t Dataset::total_tokens_truncated(int32_t max_input_len,
                                        int32_t max_target_len) const {
  int64_t total = 0;
  for (const auto& s : samples_) {
    total += Truncate(s, max_input_len, max_target_len).total_tokens();
  }
  return total;
}

int32_t Dataset::max_input_len() const {
  int32_t m = 0;
  for (const auto& s : samples_) {
    m = std::max(m, s.input_len);
  }
  return m;
}

int32_t Dataset::max_target_len() const {
  int32_t m = 0;
  for (const auto& s : samples_) {
    m = std::max(m, s.target_len);
  }
  return m;
}

double Dataset::mean_input_len() const {
  if (samples_.empty()) {
    return 0.0;
  }
  int64_t total = 0;
  for (const auto& s : samples_) {
    total += s.input_len;
  }
  return static_cast<double>(total) / static_cast<double>(samples_.size());
}

Sample Truncate(const Sample& s, int32_t max_input_len, int32_t max_target_len) {
  Sample out = s;
  if (max_input_len > 0) {
    out.input_len = std::min(out.input_len, max_input_len);
  }
  if (max_target_len > 0) {
    out.target_len = std::min(out.target_len, max_target_len);
  }
  return out;
}

}  // namespace dynapipe::data
