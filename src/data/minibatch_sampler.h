// Token-budget mini-batch sampling.
//
// The paper fixes the *global batch size in tokens* (e.g., 65536) and fills each
// training iteration's mini-batch by randomly sampling dataset examples until the
// token budget is met (§8.1). Sampling is random — DynaPipe deliberately does not
// sort the dataset (bucketing destroys batch randomness, §2.1); it only reorders
// samples *within* a mini-batch later, preserving mathematical equivalence.
#ifndef DYNAPIPE_SRC_DATA_MINIBATCH_SAMPLER_H_
#define DYNAPIPE_SRC_DATA_MINIBATCH_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/data/dataset.h"

namespace dynapipe::data {

struct MiniBatchSamplerOptions {
  // Target tokens per mini-batch (input + target, after truncation).
  int64_t global_batch_tokens = 65'536;
  // Truncation limits applied to every sample (<= 0 disables).
  int32_t max_input_len = 0;
  int32_t max_target_len = 0;
  uint64_t seed = 7;
};

// One pass ("epoch") over a shuffled dataset, emitting mini-batches that each hold
// roughly global_batch_tokens tokens. The final partial mini-batch is emitted too.
class MiniBatchSampler {
 public:
  MiniBatchSampler(const Dataset& dataset, const MiniBatchSamplerOptions& options);

  // True if another mini-batch is available.
  bool HasNext() const;

  // Next mini-batch of (truncated) samples. A mini-batch always contains at least
  // one sample, even if that sample alone exceeds the token budget.
  std::vector<Sample> Next();

  // Number of mini-batches a full epoch will produce (computed lazily by cloning
  // the iteration; O(dataset size)).
  int64_t CountBatchesInEpoch() const;

  void Reset();

 private:
  const Dataset& dataset_;
  MiniBatchSamplerOptions options_;
  std::vector<uint32_t> order_;
  size_t cursor_ = 0;
};

}  // namespace dynapipe::data

#endif  // DYNAPIPE_SRC_DATA_MINIBATCH_SAMPLER_H_
