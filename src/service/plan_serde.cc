#include "src/service/plan_serde.h"

#include <cstring>

#include "src/common/check.h"

namespace dynapipe::service {
namespace {

uint64_t Zigzag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

int64_t Unzigzag(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

int32_t ParseInt32(std::string_view bytes, size_t* pos) {
  const int64_t v = ParseZigzag(bytes, pos);
  DYNAPIPE_CHECK_MSG(v >= INT32_MIN && v <= INT32_MAX,
                     "plan serde: field out of int32 range");
  return static_cast<int32_t>(v);
}

uint8_t ParseByte(std::string_view bytes, size_t* pos) {
  DYNAPIPE_CHECK_MSG(*pos < bytes.size(), "plan serde: truncated buffer");
  return static_cast<uint8_t>(bytes[(*pos)++]);
}

}  // namespace

void AppendVarint(uint64_t v, std::string* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

void AppendZigzag(int64_t v, std::string* out) { AppendVarint(Zigzag(v), out); }

uint64_t ParseVarint(std::string_view bytes, size_t* pos) {
  uint64_t v = 0;
  int shift = 0;
  for (;;) {
    DYNAPIPE_CHECK_MSG(*pos < bytes.size(), "plan serde: truncated varint");
    DYNAPIPE_CHECK_MSG(shift < 64, "plan serde: overlong varint");
    const uint8_t b = static_cast<uint8_t>(bytes[(*pos)++]);
    v |= static_cast<uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) {
      return v;
    }
    shift += 7;
  }
}

int64_t ParseZigzag(std::string_view bytes, size_t* pos) {
  return Unzigzag(ParseVarint(bytes, pos));
}

void AppendInstruction(const sim::Instruction& instr, std::string* out) {
  out->push_back(static_cast<char>(instr.type));
  AppendZigzag(instr.microbatch, out);
  AppendZigzag(instr.peer, out);
  AppendZigzag(instr.bytes, out);
  AppendZigzag(instr.shape.num_samples, out);
  AppendZigzag(instr.shape.input_len, out);
  AppendZigzag(instr.shape.target_len, out);
  out->push_back(static_cast<char>(instr.recompute));
  AppendZigzag(instr.fusion_group, out);
}

sim::Instruction ParseInstruction(std::string_view bytes, size_t* pos) {
  sim::Instruction instr;
  const uint8_t type = ParseByte(bytes, pos);
  DYNAPIPE_CHECK_MSG(type < sim::kNumInstrTypes,
                     "plan serde: unknown instruction type");
  instr.type = static_cast<sim::InstrType>(type);
  instr.microbatch = ParseInt32(bytes, pos);
  instr.peer = ParseInt32(bytes, pos);
  instr.bytes = ParseZigzag(bytes, pos);
  instr.shape.num_samples = ParseInt32(bytes, pos);
  instr.shape.input_len = ParseInt32(bytes, pos);
  instr.shape.target_len = ParseInt32(bytes, pos);
  const uint8_t recompute = ParseByte(bytes, pos);
  DYNAPIPE_CHECK_MSG(recompute <= static_cast<uint8_t>(model::RecomputeMode::kFull),
                     "plan serde: unknown recompute mode");
  instr.recompute = static_cast<model::RecomputeMode>(recompute);
  instr.fusion_group = ParseInt32(bytes, pos);
  return instr;
}

std::string EncodeExecutionPlan(const sim::ExecutionPlan& plan) {
  std::string out;
  // Typical plans are a few hundred instructions at ~6 bytes each; one
  // reservation avoids regrowth in the common case.
  size_t instructions = 0;
  for (const auto& dev : plan.devices) {
    instructions += dev.instructions.size();
  }
  out.reserve(sizeof(kPlanSerdeMagic) + 16 + 8 * plan.devices.size() +
              12 * instructions);
  out.append(kPlanSerdeMagic, sizeof(kPlanSerdeMagic));
  out.push_back(static_cast<char>(kPlanSerdeVersion));
  AppendZigzag(plan.num_microbatches, &out);
  AppendVarint(plan.devices.size(), &out);
  for (const auto& dev : plan.devices) {
    AppendZigzag(dev.device, &out);
    AppendVarint(dev.instructions.size(), &out);
    for (const auto& instr : dev.instructions) {
      AppendInstruction(instr, &out);
    }
  }
  return out;
}

sim::ExecutionPlan DecodeExecutionPlan(std::string_view bytes) {
  size_t pos = 0;
  DYNAPIPE_CHECK_MSG(bytes.size() >= sizeof(kPlanSerdeMagic) + 1 &&
                         std::memcmp(bytes.data(), kPlanSerdeMagic,
                                     sizeof(kPlanSerdeMagic)) == 0,
                     "plan serde: bad magic");
  pos = sizeof(kPlanSerdeMagic);
  const uint8_t version = ParseByte(bytes, &pos);
  DYNAPIPE_CHECK_MSG(version == kPlanSerdeVersion,
                     "plan serde: unsupported version");
  sim::ExecutionPlan plan;
  plan.num_microbatches = ParseInt32(bytes, &pos);
  const uint64_t num_devices = ParseVarint(bytes, &pos);
  // A device count that cannot possibly fit in the remaining bytes means a
  // corrupt length field; catch it before resize tries to allocate it.
  DYNAPIPE_CHECK_MSG(num_devices <= bytes.size() - pos,
                     "plan serde: implausible device count");
  plan.devices.resize(num_devices);
  for (auto& dev : plan.devices) {
    dev.device = ParseInt32(bytes, &pos);
    const uint64_t num_instr = ParseVarint(bytes, &pos);
    DYNAPIPE_CHECK_MSG(num_instr <= bytes.size() - pos,
                       "plan serde: implausible instruction count");
    dev.instructions.reserve(num_instr);
    for (uint64_t i = 0; i < num_instr; ++i) {
      dev.instructions.push_back(ParseInstruction(bytes, &pos));
    }
  }
  DYNAPIPE_CHECK_MSG(pos == bytes.size(), "plan serde: trailing bytes");
  return plan;
}

}  // namespace dynapipe::service
