#include "src/service/plan_serde.h"

#include <cstring>
#include <utility>

#include "src/common/check.h"

namespace dynapipe::service {
namespace {

uint64_t Zigzag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

int64_t Unzigzag(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

// Non-fatal decode cursor. Every primitive returns false (and latches the
// first error) on malformed input; callers check ok() once at the end — a
// failed primitive leaves its output zeroed, so parsing past an error is
// harmless and keeps the call sites linear.
class Decoder {
 public:
  explicit Decoder(std::string_view bytes) : bytes_(bytes) {}

  bool ok() const { return error_ == nullptr; }
  const char* error() const { return error_ == nullptr ? "" : error_; }
  size_t pos() const { return pos_; }
  size_t remaining() const { return bytes_.size() - pos_; }

  bool Byte(uint8_t* out) {
    *out = 0;
    if (pos_ >= bytes_.size()) {
      return Fail("truncated buffer");
    }
    *out = static_cast<uint8_t>(bytes_[pos_++]);
    return true;
  }

  bool Varint(uint64_t* out) {
    *out = 0;
    int shift = 0;
    for (;;) {
      if (pos_ >= bytes_.size()) {
        return Fail("truncated varint");
      }
      if (shift >= 64) {
        return Fail("overlong varint");
      }
      const uint8_t b = static_cast<uint8_t>(bytes_[pos_++]);
      *out |= static_cast<uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) {
        return true;
      }
      shift += 7;
    }
  }

  bool Zigzag(int64_t* out) {
    uint64_t raw = 0;
    const bool ok = Varint(&raw);
    *out = Unzigzag(raw);
    return ok;
  }

  bool Int32(int32_t* out) {
    *out = 0;
    int64_t v = 0;
    if (!Zigzag(&v)) {
      return false;
    }
    if (v < INT32_MIN || v > INT32_MAX) {
      return Fail("field out of int32 range");
    }
    *out = static_cast<int32_t>(v);
    return true;
  }

  bool Fail(const char* what) {
    if (error_ == nullptr) {
      error_ = what;
    }
    return false;
  }

 private:
  std::string_view bytes_;
  size_t pos_ = 0;
  const char* error_ = nullptr;
};

bool DecodeInstruction(Decoder& dec, sim::Instruction* instr) {
  uint8_t type = 0;
  dec.Byte(&type);
  if (dec.ok() && type >= sim::kNumInstrTypes) {
    dec.Fail("unknown instruction type");
  }
  if (dec.ok()) {
    instr->type = static_cast<sim::InstrType>(type);
  }
  dec.Int32(&instr->microbatch);
  dec.Int32(&instr->peer);
  dec.Zigzag(&instr->bytes);
  dec.Int32(&instr->shape.num_samples);
  dec.Int32(&instr->shape.input_len);
  dec.Int32(&instr->shape.target_len);
  uint8_t recompute = 0;
  dec.Byte(&recompute);
  if (dec.ok() &&
      recompute > static_cast<uint8_t>(model::RecomputeMode::kFull)) {
    dec.Fail("unknown recompute mode");
  }
  if (dec.ok()) {
    instr->recompute = static_cast<model::RecomputeMode>(recompute);
  }
  dec.Int32(&instr->fusion_group);
  return dec.ok();
}

bool DecodePlan(Decoder& dec, sim::ExecutionPlan* plan) {
  if (dec.remaining() < sizeof(kPlanSerdeMagic)) {
    return dec.Fail("bad magic");
  }
  char magic[sizeof(kPlanSerdeMagic)];
  for (char& c : magic) {
    uint8_t b = 0;
    dec.Byte(&b);
    c = static_cast<char>(b);
  }
  if (std::memcmp(magic, kPlanSerdeMagic, sizeof(kPlanSerdeMagic)) != 0) {
    return dec.Fail("bad magic");
  }
  uint8_t version = 0;
  dec.Byte(&version);
  if (dec.ok() && version != kPlanSerdeVersion) {
    return dec.Fail("unsupported version");
  }
  dec.Int32(&plan->num_microbatches);
  uint64_t num_devices = 0;
  dec.Varint(&num_devices);
  // A device count that cannot possibly fit in the remaining bytes means a
  // corrupt length field; catch it before resize tries to allocate it.
  if (dec.ok() && num_devices > dec.remaining()) {
    return dec.Fail("implausible device count");
  }
  if (!dec.ok()) {
    return false;
  }
  plan->devices.resize(num_devices);
  for (auto& dev : plan->devices) {
    dec.Int32(&dev.device);
    uint64_t num_instr = 0;
    dec.Varint(&num_instr);
    if (dec.ok() && num_instr > dec.remaining()) {
      return dec.Fail("implausible instruction count");
    }
    if (!dec.ok()) {
      return false;
    }
    dev.instructions.resize(num_instr);
    for (auto& instr : dev.instructions) {
      if (!DecodeInstruction(dec, &instr)) {
        return false;
      }
    }
  }
  if (dec.remaining() != 0) {
    return dec.Fail("trailing bytes");
  }
  return dec.ok();
}

}  // namespace

void AppendVarint(uint64_t v, std::string* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

void AppendZigzag(int64_t v, std::string* out) { AppendVarint(Zigzag(v), out); }

bool TryParseVarint(std::string_view bytes, size_t* pos, uint64_t* out) {
  Decoder dec(bytes.substr(*pos));
  const bool ok = dec.Varint(out);
  *pos += dec.pos();
  return ok;
}

bool TryParseZigzag(std::string_view bytes, size_t* pos, int64_t* out) {
  Decoder dec(bytes.substr(*pos));
  const bool ok = dec.Zigzag(out);
  *pos += dec.pos();
  return ok;
}

uint64_t ParseVarint(std::string_view bytes, size_t* pos) {
  Decoder dec(bytes.substr(*pos));
  uint64_t v = 0;
  const bool ok = dec.Varint(&v);
  *pos += dec.pos();
  DYNAPIPE_CHECK_MSG(ok, std::string("plan serde: ") + dec.error());
  return v;
}

int64_t ParseZigzag(std::string_view bytes, size_t* pos) {
  return Unzigzag(ParseVarint(bytes, pos));
}

void AppendInstruction(const sim::Instruction& instr, std::string* out) {
  out->push_back(static_cast<char>(instr.type));
  AppendZigzag(instr.microbatch, out);
  AppendZigzag(instr.peer, out);
  AppendZigzag(instr.bytes, out);
  AppendZigzag(instr.shape.num_samples, out);
  AppendZigzag(instr.shape.input_len, out);
  AppendZigzag(instr.shape.target_len, out);
  out->push_back(static_cast<char>(instr.recompute));
  AppendZigzag(instr.fusion_group, out);
}

sim::Instruction ParseInstruction(std::string_view bytes, size_t* pos) {
  Decoder dec(bytes.substr(*pos));
  sim::Instruction instr;
  const bool ok = DecodeInstruction(dec, &instr);
  *pos += dec.pos();
  DYNAPIPE_CHECK_MSG(ok, std::string("plan serde: ") + dec.error());
  return instr;
}

std::string EncodeExecutionPlan(const sim::ExecutionPlan& plan) {
  std::string out;
  EncodeExecutionPlanInto(plan, &out);
  return out;
}

void EncodeExecutionPlanInto(const sim::ExecutionPlan& plan, std::string* out) {
  out->clear();
  // Typical plans are a few hundred instructions at ~6 bytes each; one
  // reservation avoids regrowth in the common case (and is a no-op for a
  // reused scratch buffer that already grew to plan size).
  size_t instructions = 0;
  for (const auto& dev : plan.devices) {
    instructions += dev.instructions.size();
  }
  out->reserve(sizeof(kPlanSerdeMagic) + 16 + 8 * plan.devices.size() +
               12 * instructions);
  out->append(kPlanSerdeMagic, sizeof(kPlanSerdeMagic));
  out->push_back(static_cast<char>(kPlanSerdeVersion));
  AppendZigzag(plan.num_microbatches, out);
  AppendVarint(plan.devices.size(), out);
  for (const auto& dev : plan.devices) {
    AppendZigzag(dev.device, out);
    AppendVarint(dev.instructions.size(), out);
    for (const auto& instr : dev.instructions) {
      AppendInstruction(instr, out);
    }
  }
}

std::optional<sim::ExecutionPlan> TryDecodeExecutionPlan(std::string_view bytes,
                                                         std::string* error) {
  Decoder dec(bytes);
  sim::ExecutionPlan plan;
  if (!DecodePlan(dec, &plan)) {
    if (error != nullptr) {
      *error = dec.error();
    }
    return std::nullopt;
  }
  return plan;
}

sim::ExecutionPlan DecodeExecutionPlan(std::string_view bytes) {
  std::string error;
  std::optional<sim::ExecutionPlan> plan = TryDecodeExecutionPlan(bytes, &error);
  DYNAPIPE_CHECK_MSG(plan.has_value(), "plan serde: " + error);
  return std::move(*plan);
}

}  // namespace dynapipe::service
