#include "src/service/plan_ahead_service.h"

#include <chrono>
#include <exception>
#include <string>
#include <utility>

#include "src/common/check.h"
#include "src/common/metrics.h"
#include "src/common/thread_pool.h"
#include "src/common/timing.h"
#include "src/common/trace.h"
#include "src/service/plan_cache.h"

namespace dynapipe::service {

namespace {
// Process-wide plan-ahead instruments, resolved once (registration locks the
// registry; the references stay valid for the life of the process).
struct PlanAheadMetrics {
  common::Counter& cache_hits;
  common::Counter& cache_misses;
  // Planned-but-not-yet-delivered slots — the lookahead pipeline's fill.
  common::Gauge& queue_depth;
  common::LatencyHistogram& planning_us;
  common::LatencyHistogram& partition_us;
  common::LatencyHistogram& schedule_us;
  // Time NextPlan spent blocked per delivery — the latency planning failed
  // to hide. A warm pipeline's histogram sits in the lowest buckets.
  common::LatencyHistogram& stall_us;

  static PlanAheadMetrics& Get() {
    static PlanAheadMetrics m = [] {
      common::MetricsRegistry& r = common::MetricsRegistry::Instance();
      return PlanAheadMetrics{r.GetCounter("planahead_cache_hits_total"),
                              r.GetCounter("planahead_cache_misses_total"),
                              r.GetGauge("planahead_queue_depth"),
                              r.GetHistogram("planahead_planning_us"),
                              r.GetHistogram("planahead_partition_us"),
                              r.GetHistogram("planahead_schedule_us"),
                              r.GetHistogram("planahead_stall_us")};
    }();
    return m;
  }
};
}  // namespace

PlanAheadService::PlanAheadService(PlanFn plan_fn, MiniBatchSource source,
                                   PlanAheadOptions options)
    : plan_fn_(std::move(plan_fn)), source_(std::move(source)),
      options_(std::move(options)),
      store_(options_.store != nullptr
                 ? options_.store
                 : std::make_shared<runtime::InstructionStore>(
                       runtime::InstructionStoreOptions{
                           options_.serialize_plans, options_.store_capacity})) {
  DYNAPIPE_CHECK(plan_fn_ != nullptr);
  DYNAPIPE_CHECK(source_ != nullptr);
  DYNAPIPE_CHECK(options_.lookahead >= 0);
  DYNAPIPE_CHECK(options_.quantization >= 1);
  DYNAPIPE_CHECK_MSG(options_.lookahead == 0 || options_.pool != nullptr,
                     "plan-ahead lookahead > 0 needs a ThreadPool");
}

PlanAheadService::~PlanAheadService() { Shutdown(); }

void PlanAheadService::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) {
      return;
    }
    stopped_ = true;
  }
  cv_.notify_all();
  // Unblock anything stuck in a full store; its plans are dropped.
  store_->Shutdown();
  std::unique_lock<std::mutex> lock(mu_);
  while (in_flight_ != 0) {
    if (options_.pool != nullptr) {
      // In-flight tasks may still be queued, unstarted — and this thread may
      // itself be a pool worker (grid search runs whole epochs on the shared
      // pool), so waiting without draining could leave nobody to run them.
      // Same discipline as NextPlan's wait.
      lock.unlock();
      const bool ran = options_.pool->RunPendingTask();
      lock.lock();
      if (!ran) {
        cv_.wait_for(lock, std::chrono::milliseconds(10));
      }
    } else {
      cv_.wait(lock);
    }
  }
}

std::optional<std::vector<data::Sample>> PlanAheadService::PullMiniBatch() {
  std::vector<data::Sample> mb = source_();
  if (mb.empty()) {
    return std::nullopt;
  }
  return mb;
}

void PlanAheadService::TopUp() {
  if (options_.lookahead <= 0) {
    return;
  }
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopped_ || source_drained_ ||
          next_submit_ - next_deliver_ >=
              static_cast<int64_t>(options_.lookahead)) {
        return;
      }
    }
    // Pull outside the lock: the source is consumer-thread-only and may be
    // expensive (sampling, truncation).
    std::optional<std::vector<data::Sample>> mb = PullMiniBatch();
    int64_t iteration;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!mb.has_value()) {
        source_drained_ = true;
        cv_.notify_all();
        return;
      }
      iteration = next_submit_++;
      ++in_flight_;
    }
    options_.pool->Submit([this, iteration, m = std::move(*mb)]() mutable {
      RunIteration(iteration, std::move(m));
    });
  }
}

void PlanAheadService::RunIteration(int64_t iteration,
                                    std::vector<data::Sample> minibatch) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) {
      // Teardown in progress: the consumer will never deliver this slot, so
      // skip the planning work entirely.
      --in_flight_;
      cv_.notify_all();
      return;
    }
  }

  const auto start = SteadyClock::now();
  // The "planned" span covers cache lookup + planning + rebind; replica −1
  // because one planning pass covers every replica of the iteration. Ended
  // explicitly before the publish (which has its own "published" spans).
  std::optional<common::TraceSpan> planned_span;
  planned_span.emplace("planned", "plan", iteration, -1);
  runtime::IterationPlan plan;
  bool cache_hit = false;
  PlanCache* cache = options_.plan_cache.get();
  // A planning exception must not escape: the slot would never be marked
  // planned and the consumer (and Shutdown) would wait forever. Convert it to
  // an infeasible plan so the trainer surfaces it as a failed epoch — the
  // same observable outcome the old inline path's rethrow produced.
  // Planner entry point, optionally warm-started. A near-miss seed routes
  // through seeded_plan_fn under its own "plan_incremental" span so traces
  // show which plans were computed with a donor bound (the span nests inside
  // "planned", like the store's "published" spans nest publishing).
  const auto plan_batch = [&](const std::vector<data::Sample>& batch,
                              const runtime::PlanSeed* seed) {
    if (options_.seeded_plan_fn != nullptr) {
      if (seed != nullptr) {
        common::TraceSpan span("plan_incremental", "plan", iteration, -1);
        return options_.seeded_plan_fn(batch, seed);
      }
      return options_.seeded_plan_fn(batch, nullptr);
    }
    return plan_fn_(batch);
  };
  try {
    if (cache != nullptr) {
      const PlanSignature sig =
          PlanCache::Signature(minibatch, options_.fold_target_lengths,
                               options_.quantization, options_.config_hash);
      std::optional<runtime::IterationPlan> cached = cache->Lookup(
          sig, minibatch, options_.fold_target_lengths, options_.quantization);
      if (cached.has_value()) {
        plan = std::move(*cached);
        // The hit skipped partitioning/scheduling entirely; report the lookup
        // cost and zeroed phase counters so IterationRecord shows the skip.
        plan.stats = runtime::PlanningStats{};
        plan.planning_time_ms = ElapsedMs(start);
        cache_hit = true;
      } else {
        // Exact miss: an almost-matching previous batch can still pay — its
        // partition widths bound the new DP sweep from above.
        std::optional<runtime::PlanSeed> seed;
        if (options_.seeded_plan_fn != nullptr) {
          seed = cache->LookupNearMiss(sig);
        }
        const runtime::PlanSeed* seed_ptr =
            seed.has_value() ? &*seed : nullptr;
        if (options_.quantization > 1) {
          plan = plan_batch(
              PlanCache::CanonicalizeForPlanning(
                  minibatch, options_.fold_target_lengths,
                  options_.quantization),
              seed_ptr);
          cache->Insert(sig, plan);
          if (plan.feasible) {
            plan = PlanCache::Rebind(std::move(plan), minibatch,
                                     options_.fold_target_lengths,
                                     options_.quantization);
          }
        } else {
          plan = plan_batch(minibatch, seed_ptr);
          cache->Insert(sig, plan);
        }
      }
    } else if (options_.quantization > 1) {
      plan = plan_batch(PlanCache::CanonicalizeForPlanning(
                            minibatch, options_.fold_target_lengths,
                            options_.quantization),
                        nullptr);
      if (plan.feasible) {
        plan = PlanCache::Rebind(std::move(plan), minibatch,
                                 options_.fold_target_lengths,
                                 options_.quantization);
      }
    } else {
      plan = plan_batch(minibatch, nullptr);
    }
  } catch (const std::exception& e) {
    plan = runtime::IterationPlan{};
    plan.infeasible_reason = std::string("planning threw: ") + e.what();
    cache_hit = false;
  } catch (...) {
    plan = runtime::IterationPlan{};
    plan.infeasible_reason = "planning threw an unknown exception";
    cache_hit = false;
  }
  planned_span.reset();

  PlanAheadMetrics& metrics = PlanAheadMetrics::Get();
  if (cache != nullptr) {
    (cache_hit ? metrics.cache_hits : metrics.cache_misses).Add();
  }
  metrics.planning_us.RecordMs(ElapsedMs(start));
  if (!cache_hit) {
    // Phase split from the planner's own stopwatch; a cache hit skipped both
    // phases, so recording its zeros would just distort the distributions.
    metrics.partition_us.RecordMs(plan.stats.partition_ms);
    metrics.schedule_us.RecordMs(plan.stats.schedule_ms);
  }

  std::unique_lock<std::mutex> lock(mu_);
  Slot& slot = slots_[iteration];
  slot.plan = std::move(plan);
  slot.cache_hit = cache_hit;
  slot.planned = true;
  if (cache != nullptr) {
    ++(cache_hit ? stats_.plan_cache_hits : stats_.plan_cache_misses);
  }
  metrics.queue_depth.Set(static_cast<int64_t>(slots_.size()));
  PublishLocked(lock);
  --in_flight_;
  cv_.notify_all();
}

void PlanAheadService::PublishLocked(std::unique_lock<std::mutex>& lock) {
  // In-order publisher: whichever thread completes the frontier iteration
  // drains every consecutive planned slot; `publishing_` keeps the order
  // deterministic while the lock is released around store pushes. The
  // publisher must never block inside Push: the consumer itself publishes
  // when it help-drains a planning task, and a consumer wedged on a full
  // store is the one thread whose fetches could have freed it. Instead,
  // publishing defers when the store lacks headroom and resumes from
  // FetchExecPlan once capacity frees (only the publisher grows the store and
  // only fetches shrink it, so the headroom check cannot race into a block).
  while (!publishing_) {
    const auto it = slots_.find(next_publish_);
    if (it == slots_.end() || !it->second.planned) {
      return;
    }
    const size_t num_plans =
        it->second.plan.feasible ? it->second.plan.replicas.size() : 0;
    DYNAPIPE_CHECK_MSG(options_.store_capacity == 0 ||
                           options_.store_capacity >= num_plans,
                       "instruction store capacity below one iteration's "
                       "replica count can never publish");
    if (options_.store_capacity != 0 &&
        resident_plans_ + num_plans > options_.store_capacity) {
      return;  // deferred until the consumer fetches
    }
    publishing_ = true;
    std::vector<sim::ExecutionPlan> exec_plans;
    exec_plans.reserve(num_plans);
    for (size_t d = 0; d < num_plans; ++d) {
      exec_plans.push_back(std::move(it->second.plan.replicas[d].exec_plan));
      it->second.plan.replicas[d].exec_plan = sim::ExecutionPlan{};
    }
    const int64_t iteration = next_publish_;
    lock.unlock();
    for (size_t d = 0; d < exec_plans.size(); ++d) {
      store_->Push(iteration, static_cast<int32_t>(d),
                  std::move(exec_plans[d]));
    }
    lock.lock();
    // The slot iterator stays valid: only the consumer erases slots, and it
    // waits for `published` below.
    resident_plans_ += exec_plans.size();
    it->second.published = true;
    ++next_publish_;
    publishing_ = false;
    cv_.notify_all();
  }
}

std::optional<ServicedPlan> PlanAheadService::NextPlan() {
  const auto start = SteadyClock::now();
  TopUp();
  if (options_.lookahead <= 0) {
    // Inline mode: plan the next iteration synchronously on this thread. The
    // whole planning latency is stall — nothing hides it.
    bool have_work = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      have_work = !stopped_ && !source_drained_;
    }
    if (have_work) {
      std::optional<std::vector<data::Sample>> mb = PullMiniBatch();
      std::unique_lock<std::mutex> lock(mu_);
      if (!mb.has_value()) {
        source_drained_ = true;
      } else {
        const int64_t iteration = next_submit_++;
        ++in_flight_;
        lock.unlock();
        RunIteration(iteration, std::move(*mb));
      }
    }
  }

  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (stopped_) {
      // Shutdown may have skipped or dropped in-flight iterations (and their
      // store entries); delivering a partial pipeline would hand out plans
      // whose exec plans are gone.
      return std::nullopt;
    }
    const auto it = slots_.find(next_deliver_);
    if (it != slots_.end() && it->second.published) {
      ServicedPlan out;
      out.iteration = next_deliver_;
      out.plan = std::move(it->second.plan);
      out.plan_cache_hit = it->second.cache_hit;
      out.stall_ms = ElapsedMs(start);
      slots_.erase(it);
      ++next_deliver_;
      ++stats_.plans_delivered;
      stats_.stall_ms_total += out.stall_ms;
      PlanAheadMetrics& metrics = PlanAheadMetrics::Get();
      metrics.stall_us.RecordMs(out.stall_ms);
      metrics.queue_depth.Set(static_cast<int64_t>(slots_.size()));
      return out;
    }
    if (source_drained_ && next_submit_ == next_deliver_) {
      return std::nullopt;
    }
    if (options_.pool != nullptr) {
      // The consumer may itself be a pool worker (grid search fans whole
      // epochs over the same pool the services submit to): waiting outright
      // could leave every thread blocked here with the planning tasks stuck
      // in the queue. Help drain it, like ParallelFor's waiters; once the
      // queue is dry, sleep with a timeout hedge.
      lock.unlock();
      const bool ran = options_.pool->RunPendingTask();
      lock.lock();
      if (!ran) {
        cv_.wait_for(lock, std::chrono::milliseconds(10));
      }
    } else {
      cv_.wait(lock);
    }
  }
}

sim::ExecutionPlan PlanAheadService::FetchExecPlan(int64_t iteration,
                                                   int32_t replica) {
  sim::ExecutionPlan plan = store_->Fetch(iteration, replica);
  // The fetch may have freed the headroom a deferred publish is waiting for.
  std::unique_lock<std::mutex> lock(mu_);
  if (resident_plans_ > 0) {
    --resident_plans_;
  }
  PublishLocked(lock);
  return plan;
}

PlanAheadServiceStats PlanAheadService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  PlanAheadServiceStats out = stats_;
  out.published_bytes = store_->serialized_bytes_total();
  return out;
}

}  // namespace dynapipe::service
