// Mid-epoch straggler rebalancing: the performance half of the reaction path.
//
// RecoveryCoordinator reacts to *death*; RebalanceCoordinator reacts to
// *slowness*. It subscribes to the HeartbeatMonitor's straggler signal (the
// per-iteration stats fired when an iteration's report set completes) and,
// when a replica has been flagged on enough consecutive iterations, moves
// part of its *unfetched* pending backlog onto fast replicas — the same
// store-level Repost key move recovery uses, at spare iteration numbers from
// the same SpareKeyAllocator (shared, so the two coordinators can never pick
// colliding destinations). The slow replica keeps the iterations it will
// reach first; only the tail of its backlog migrates, because that is the
// work a faster replica can overtake.
//
// Three policy knobs keep one noisy iteration from thrashing plans around:
//   - consecutive_flags: a replica must straggle this many iterations in a
//     row before anything moves (a single GC pause or page-fault storm never
//     triggers);
//   - max_moves_per_event: at most this many plans migrate per trigger, so a
//     borderline replica sheds load gradually;
//   - hysteresis_iterations: after moving, the replica is immune for this
//     many iterations — time for the lighter backlog to show up in its wall
//     times before it can be flagged again.
//
// Destinations are the configured replicas that are neither straggling on
// the triggering iteration, nor declared dead, nor immovable. Immovable
// replicas are excluded on both sides: the trainer lists its in-process
// replicas there, because it fetches its own plans by exact (iteration,
// replica) key — moving work off or onto them would break that contract.
//
// Thread-safe: the straggler callback arrives from whatever thread delivered
// the completing heartbeat (a server connection handler, the shm poller, or
// the trainer loop). Construct after the monitor, destroy first — the
// destructor unregisters the callback and drains in-flight deliveries.
#ifndef DYNAPIPE_SRC_SERVICE_REBALANCE_H_
#define DYNAPIPE_SRC_SERVICE_REBALANCE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "src/runtime/instruction_store.h"
#include "src/service/heartbeat_monitor.h"
#include "src/service/recovery.h"

namespace dynapipe::service {

struct RebalanceOptions {
  // Consecutive straggler-flagged iterations before a replica sheds work.
  int32_t consecutive_flags = 3;
  // Plans migrated per trigger.
  int32_t max_moves_per_event = 2;
  // Iterations a replica is immune after shedding work.
  int64_t hysteresis_iterations = 4;
  // The replica set rebalancing may move work between.
  std::vector<int32_t> replicas;
  // Replicas whose backlog must stay put and who take no migrated work (the
  // trainer's in-process replicas — see the header comment).
  std::vector<int32_t> immovable_replicas;
  // Spare-key source; share one with the RecoveryCoordinator when both move
  // plans into the same store. Null = private allocator from
  // spare_iteration_base.
  std::shared_ptr<SpareKeyAllocator> spare_keys;
  int64_t spare_iteration_base = 0;
};

// What rebalancing has done so far; folded into EpochResult by the trainer.
struct RebalanceReport {
  int64_t events = 0;            // triggers that actually moved >= 1 plan
  int64_t moved_iterations = 0;  // plans migrated in total
  // Replicas that shed work, in first-trigger order (no duplicates).
  std::vector<int32_t> rebalanced_replicas;
};

class RebalanceCoordinator {
 public:
  // Registers itself as `monitor`'s straggler callback (requires the
  // monitor's expected_replicas to be set — with an unknown fleet size no
  // iteration ever "completes" and the signal never fires). Neither pointer
  // is owned; both must outlive the coordinator.
  RebalanceCoordinator(runtime::InstructionStoreInterface* store,
                       HeartbeatMonitor* monitor, RebalanceOptions options);
  ~RebalanceCoordinator();

  RebalanceCoordinator(const RebalanceCoordinator&) = delete;
  RebalanceCoordinator& operator=(const RebalanceCoordinator&) = delete;

  RebalanceReport report() const;

 private:
  void OnIterationComplete(const IterationHeartbeatStats& stats);

  runtime::InstructionStoreInterface* store_;
  HeartbeatMonitor* monitor_;
  RebalanceOptions options_;
  std::shared_ptr<SpareKeyAllocator> spare_keys_;

  mutable std::mutex mu_;
  RebalanceReport report_;                     // guarded by mu_
  std::map<int32_t, int32_t> consecutive_;     // replica -> flags in a row
  std::map<int32_t, int64_t> cooldown_until_;  // replica -> immune below this
};

}  // namespace dynapipe::service

#endif  // DYNAPIPE_SRC_SERVICE_REBALANCE_H_
