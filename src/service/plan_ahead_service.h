// Plan-ahead service: pipelined cross-iteration planning with serialized
// instruction distribution.
//
// DynaPipe hides per-iteration planning behind GPU execution (§3, Fig. 17):
// dataloader-side workers plan future iterations ahead of time, serialize the
// resulting instruction streams into a shared store, and executors fetch them
// when each iteration starts. PlanAheadService is that pipeline as a single
// component — the only way the trainer obtains plans:
//
//   mini-batch source -> [plan cache?] -> planner tasks on a shared ThreadPool
//                     -> in-order publish into InstructionStore (serialized?)
//                     -> NextPlan() / FetchExecPlan() consumers
//
// Properties:
//   - Bounded lookahead window: at most `lookahead` iterations exist beyond
//     the delivered frontier (backpressure on the source); `lookahead == 0`
//     degrades to inline synchronous planning — the trainer's old inline and
//     threaded paths are this one code path at different depths.
//   - Deterministic publish order: plans enter the store in iteration order
//     regardless of task completion order, so the store's publish-before-fetch
//     contract holds under any interleaving and results are bit-identical to
//     serial planning.
//   - Shared pool: plan-ahead tasks run on the same ThreadPool the planner
//     fans its per-t_max DPs and recompute modes onto, so iteration i+1's
//     window precompute overlaps iteration i's candidate sweep without a
//     second thread herd (nested fan-outs are deadlock-free, see ParallelFor).
//   - Optional cross-iteration PlanCache: recurring batch signatures skip
//     planning entirely (see plan_cache.h).
#ifndef DYNAPIPE_SRC_SERVICE_PLAN_AHEAD_SERVICE_H_
#define DYNAPIPE_SRC_SERVICE_PLAN_AHEAD_SERVICE_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "src/data/dataset.h"
#include "src/runtime/instruction_store.h"
#include "src/runtime/planner.h"

namespace dynapipe {
class ThreadPool;
}  // namespace dynapipe

namespace dynapipe::service {

class PlanCache;

struct PlanAheadOptions {
  // Iterations planned ahead of the delivered frontier. 0 plans inline on the
  // calling thread; > 0 requires `pool`.
  int32_t lookahead = 0;
  ThreadPool* pool = nullptr;
  // Cross-iteration plan cache; null disables caching. May be shared across
  // services/epochs (that is how epoch 2 hits epoch 1's plans).
  std::shared_ptr<PlanCache> plan_cache;
  // Folded into every cache signature; must pin everything the plan depends
  // on besides the batch itself (model, hardware, parallelism, planner knobs).
  uint64_t config_hash = 0;
  // Canonicalization applied to signatures and (when quantization > 1) to the
  // samples handed to the planner. fold_target_lengths mirrors the planner's
  // decoder-only folding; quantization > 1 rounds lengths up to multiples
  // (changes plan values — a padding-for-hit-rate trade, off by default).
  bool fold_target_lengths = false;
  int32_t quantization = 1;
  // Instruction store mode: serialize plans through the binary plan_serde
  // format, and bound resident plans (Push backpressure). capacity must be at
  // least the number of replicas of one iteration.
  bool serialize_plans = false;
  size_t store_capacity = 0;
  // Incremental planning: on an exact-signature miss, probe the cache for a
  // near-miss donor (longest shared sorted-length prefix, see
  // PlanCache::LookupNearMiss) and hand its partition widths to this planner
  // entry point as a warm-start seed. Null falls back to the unseeded PlanFn;
  // with no plan_cache the knob is inert. Seeds are revalidated pruning
  // bounds, so the planned result is bit-identical either way.
  std::function<runtime::IterationPlan(const std::vector<data::Sample>&,
                                       const runtime::PlanSeed*)>
      seeded_plan_fn;
  // Store backend override. Null (default): the service owns an in-process
  // InstructionStore built from the two knobs above. Non-null: plans publish
  // to this store instead — e.g. a transport::RemoteInstructionStore fronting
  // another process — and serialize_plans is ignored (a remote backend always
  // serializes). store_capacity must still mirror the backend's actual
  // capacity: the publisher uses it to defer (rather than block in) pushes
  // that would exceed it, which is what keeps a consumer that help-drains
  // planning tasks from wedging against its own unfetched plans.
  std::shared_ptr<runtime::InstructionStoreInterface> store;
};

// One delivered iteration. The execution plans have already been published to
// the store — fetch them with FetchExecPlan; `plan.replicas[*].exec_plan` is
// empty here.
struct ServicedPlan {
  int64_t iteration = 0;
  runtime::IterationPlan plan;
  bool plan_cache_hit = false;
  // Time NextPlan spent waiting for this plan — the planning latency the
  // executor could not hide (inline planning counts fully; a warm pipeline
  // reports ~0).
  double stall_ms = 0.0;
};

struct PlanAheadServiceStats {
  int64_t plans_delivered = 0;
  int64_t plan_cache_hits = 0;
  int64_t plan_cache_misses = 0;
  double stall_ms_total = 0.0;
  // Cumulative encoded plan bytes (serialized mode only).
  int64_t published_bytes = 0;
};

class PlanAheadService {
 public:
  using PlanFn =
      std::function<runtime::IterationPlan(const std::vector<data::Sample>&)>;
  // Returns the next mini-batch; an empty vector means the source is drained.
  using MiniBatchSource = std::function<std::vector<data::Sample>()>;

  PlanAheadService(PlanFn plan_fn, MiniBatchSource source,
                   PlanAheadOptions options);
  ~PlanAheadService();

  PlanAheadService(const PlanAheadService&) = delete;
  PlanAheadService& operator=(const PlanAheadService&) = delete;

  // Blocks until the next iteration's plan is planned and published, topping
  // up the lookahead window first. Returns nullopt once the source drains.
  // Must be called from one consumer thread (the source is pulled here).
  std::optional<ServicedPlan> NextPlan();

  // Fetches (and, in serialized mode, decodes) one replica's published
  // execution plan. Valid only after NextPlan returned that iteration.
  sim::ExecutionPlan FetchExecPlan(int64_t iteration, int32_t replica);

  // Stops the pipeline: unblocks publishers, lets in-flight tasks finish, and
  // drops their output. Called by the destructor; safe to call early when the
  // consumer aborts mid-epoch.
  void Shutdown();

  const runtime::InstructionStoreInterface& store() const { return *store_; }
  PlanAheadServiceStats stats() const;

 private:
  struct Slot {
    runtime::IterationPlan plan;
    bool cache_hit = false;
    bool planned = false;
    bool published = false;
  };

  // Plans iteration `iteration` (cache lookup, plan_fn, rebind), deposits the
  // result, and drives the in-order publisher. Runs on pool workers, or on
  // the consumer thread when lookahead == 0.
  void RunIteration(int64_t iteration, std::vector<data::Sample> minibatch);
  // Publishes consecutive planned slots starting at next_publish_, releasing
  // the lock around store pushes. At most one thread publishes at a time, and
  // publishing never blocks on a full store — it defers and resumes from
  // FetchExecPlan when capacity frees.
  void PublishLocked(std::unique_lock<std::mutex>& lock);
  // Pulls mini-batches and submits planning tasks until the window is full.
  void TopUp();
  // Next non-empty mini-batch, or nullopt when drained. Consumer thread only.
  std::optional<std::vector<data::Sample>> PullMiniBatch();

  PlanFn plan_fn_;
  MiniBatchSource source_;
  PlanAheadOptions options_;
  // options_.store, or the service-owned in-process store. Everything below
  // this line is backend-agnostic.
  std::shared_ptr<runtime::InstructionStoreInterface> store_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<int64_t, Slot> slots_;
  int64_t next_submit_ = 0;
  int64_t next_publish_ = 0;
  int64_t next_deliver_ = 0;
  // Plans resident in the store, tracked locally: the service is the store's
  // only producer and FetchExecPlan its only consumer, so this mirrors
  // store().size() without querying it — which for a remote backend would be
  // a network round trip under mu_.
  size_t resident_plans_ = 0;
  int32_t in_flight_ = 0;
  bool publishing_ = false;
  bool source_drained_ = false;
  bool stopped_ = false;
  PlanAheadServiceStats stats_;
};

}  // namespace dynapipe::service

#endif  // DYNAPIPE_SRC_SERVICE_PLAN_AHEAD_SERVICE_H_
