// Heartbeat monitor: per-replica liveness tracking and straggler detection.
//
// Executor processes report iteration completion back to the trainer — a
// kHeartbeat frame over the wire backends, or a direct OnHeartbeat call for
// replicas the trainer executes itself. The monitor keeps two views of that
// stream:
//   - per-replica progress: the last iteration each replica completed (a
//     replica whose frontier stops advancing is dead or wedged);
//   - per-iteration completion times: every replica's wall-ms for iteration
//     i, from which it derives the iteration's median and flags *stragglers*
//     — replicas whose completion exceeds straggler_multiple x the median
//     (plus an absolute slack so microsecond-scale jitter on fast iterations
//     never flags).
// This mirrors how elastic-training systems consume centrally produced
// schedules while reporting liveness: the planner does not block on
// heartbeats, it observes them and surfaces lag (IterationRecord's straggler
// fields) so a deployment can rebalance or evict.
//
// Thread-safe: heartbeats arrive concurrently from server connection
// handlers and from the trainer's own execution loop.
#ifndef DYNAPIPE_SRC_SERVICE_HEARTBEAT_MONITOR_H_
#define DYNAPIPE_SRC_SERVICE_HEARTBEAT_MONITOR_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "src/runtime/instruction_store.h"

namespace dynapipe::service {

struct HeartbeatMonitorOptions {
  // A replica straggles on iteration i when
  //   wall_ms > straggler_multiple * median(wall_ms of all replicas on i)
  //             + min_straggler_gap_ms.
  // The multiple is the paper-style relative criterion; the absolute gap
  // keeps sub-millisecond iterations (simulated runs, empty plans) from
  // flagging on scheduler noise.
  double straggler_multiple = 2.0;
  double min_straggler_gap_ms = 0.0;
};

// One iteration's completion picture so far.
struct IterationHeartbeatStats {
  int64_t iteration = 0;
  int32_t replicas_reported = 0;
  double median_wall_ms = 0.0;
  double max_wall_ms = 0.0;
  // Replicas over the straggler threshold, ascending. Meaningful once at
  // least two replicas reported (a lone replica defines the median).
  std::vector<int32_t> stragglers;
};

class HeartbeatMonitor final : public runtime::HeartbeatSink {
 public:
  explicit HeartbeatMonitor(HeartbeatMonitorOptions options = {});

  // runtime::HeartbeatSink: one replica finished one iteration. A duplicate
  // (replica, iteration) report overwrites — a reconnecting executor may
  // legitimately resend its last heartbeat.
  void OnHeartbeat(int32_t replica, int64_t iteration,
                   double wall_ms) override;

  // Snapshot of iteration `iteration` (zeros when nothing reported yet).
  IterationHeartbeatStats ForIteration(int64_t iteration) const;

  // Last iteration `replica` completed; -1 before its first heartbeat. The
  // per-replica progress frontier.
  int64_t LastIteration(int32_t replica) const;

  // Replicas whose progress frontier lags the most advanced replica by more
  // than `max_lag` iterations — the liveness (as opposed to latency) view of
  // straggling: a replica that stopped heartbeating entirely shows up here
  // even though it contributes no wall-ms samples to lag behind on.
  std::vector<int32_t> LaggingReplicas(int64_t max_lag) const;

  int64_t total_heartbeats() const;
  const HeartbeatMonitorOptions& options() const { return options_; }

 private:
  IterationHeartbeatStats ForIterationLocked(int64_t iteration) const;

  HeartbeatMonitorOptions options_;
  mutable std::mutex mu_;
  int64_t total_heartbeats_ = 0;
  std::map<int32_t, int64_t> last_iteration_;  // replica -> frontier
  // iteration -> (replica -> wall_ms). Iterations are short-lived keys; the
  // trainer consumes stats per iteration, but nothing is evicted — an epoch
  // is thousands of iterations of a few replicas each, far below memory
  // relevance.
  std::map<int64_t, std::map<int32_t, double>> completions_;
};

}  // namespace dynapipe::service

#endif  // DYNAPIPE_SRC_SERVICE_HEARTBEAT_MONITOR_H_
