// Heartbeat monitor: per-replica liveness tracking and straggler detection.
//
// Executor processes report iteration completion back to the trainer — a
// kHeartbeat frame over the wire backends, or a direct OnHeartbeat call for
// replicas the trainer executes itself. The monitor keeps two views of that
// stream:
//   - per-replica progress: the last iteration each replica completed (a
//     replica whose frontier stops advancing is dead or wedged);
//   - per-iteration completion times: every replica's wall-ms for iteration
//     i, from which it derives the iteration's median and flags *stragglers*
//     — replicas whose completion exceeds straggler_multiple x the median
//     (plus an absolute slack so microsecond-scale jitter on fast iterations
//     never flags).
//
// On top of lag it now tracks *liveness* — the state machine the recovery
// control loop acts on:
//
//   kUnknown ──attach/heartbeat──> kAlive
//   kAlive   ──no heartbeat for suspect_after_ms──────> kSuspect
//   kAlive/kSuspect ──no heartbeat for dead_after_ms──> kDead
//   kAlive/kSuspect ──unclean connection drop──> kDead   (grace 0)
//                                           └──> kSuspect, then kDead after
//                                                connection_grace_ms (grace>0)
//   any non-dead ──drain request──> kDraining (elastic membership: the
//                                   replica asked to leave; heartbeats for
//                                   in-flight work still refresh its deadline
//                                   but never revive it to kAlive, and a
//                                   wedged drainer still dies by deadline)
//   any non-dead ──clean detach──> kDetached (deadline tracking stops)
//
// kDead is *sticky*: a heartbeat or re-attach from a dead replica never
// revives it — its plans may already be re-published, so the only safe
// answer to a zombie is eviction (the server's kEvicted reply, driven by
// IsReplicaDead). Every transition is surfaced through the ReplicaEvent
// callback, which is what RecoveryCoordinator subscribes to.
//
// Deadlines are enforced by an internal watchdog thread (started only when a
// deadline is configured) and by PollLiveness(), which tests call directly
// for deterministic ticks. Thread-safe: heartbeats arrive concurrently from
// server connection handlers, the trainer's own execution loop, and the
// watchdog. Events are delivered outside the monitor lock, so a callback may
// call back into the monitor or the store.
#ifndef DYNAPIPE_SRC_SERVICE_HEARTBEAT_MONITOR_H_
#define DYNAPIPE_SRC_SERVICE_HEARTBEAT_MONITOR_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/runtime/instruction_store.h"

namespace dynapipe::service {

enum class ReplicaLiveness : uint8_t {
  kUnknown = 0,  // never seen
  kAlive,
  kSuspect,   // deadline blown or unclean drop within grace — not yet acted on
  kDead,      // declared dead; sticky (recovery may have moved its plans)
  kDetached,  // clean goodbye; absence is expected, deadlines off
  kDraining,  // asked to leave gracefully; finishing in-flight work, must not
              // be handed anything new (the MembershipCoordinator's cue)
};

const char* ReplicaLivenessName(ReplicaLiveness state);

struct HeartbeatMonitorOptions {
  // A replica straggles on iteration i when
  //   wall_ms > straggler_multiple * median(wall_ms of all replicas on i)
  //             + min_straggler_gap_ms.
  // The multiple is the paper-style relative criterion; the absolute gap
  // keeps sub-millisecond iterations (simulated runs, empty plans) from
  // flagging on scheduler noise.
  double straggler_multiple = 2.0;
  double min_straggler_gap_ms = 0.0;

  // --- Liveness deadlines (0 disables the transition) ---
  // Silence (no heartbeat/attach) longer than this marks an alive replica
  // kSuspect...
  double suspect_after_ms = 0.0;
  // ...and longer than this declares it kDead. The stall-detection deadline:
  // a wedged executor whose connection is still up only ever trips this.
  double dead_after_ms = 0.0;
  // Unclean connection drop (the server saw the stream die with the replica
  // still attached): 0 declares the replica dead immediately — a vanished
  // process, the SIGKILL case; > 0 marks it kSuspect and declares death only
  // if it has not re-attached or heartbeated within the grace — tolerance
  // for clients that reconnect after a transport error.
  double connection_grace_ms = 0.0;
  // Start the internal watchdog thread when any deadline above is set.
  // Tests disable it and drive PollLiveness() by hand.
  bool watchdog = true;

  // How many replicas are expected to report each iteration (the trainer
  // passes its DP width). 0 = unknown: straggler flagging falls back to
  // whatever subset has reported. When set, ForIteration flags stragglers
  // only once at least this many replicas reported — a mid-iteration query
  // with 1–2 reporters yields a meaningless median and used to mis-flag
  // early finishers.
  int32_t expected_replicas = 0;
};

// One iteration's completion picture so far.
struct IterationHeartbeatStats {
  int64_t iteration = 0;
  int32_t replicas_reported = 0;
  // The expected fleet size at query time (options.expected_replicas as
  // adjusted by set_expected_replicas), echoed so a caller can see a partial
  // picture for what it is (reported < expected = iteration still in flight).
  int32_t replicas_expected = 0;
  double median_wall_ms = 0.0;
  double max_wall_ms = 0.0;
  // Replicas over the straggler threshold, ascending. Empty while the report
  // set is partial (reported < expected) — a median over whichever subset
  // happened to finish first is not a threshold.
  std::vector<int32_t> stragglers;
};

// One liveness transition, delivered to the event callback as it happens.
struct ReplicaEvent {
  int32_t replica = 0;
  ReplicaLiveness from = ReplicaLiveness::kUnknown;
  ReplicaLiveness to = ReplicaLiveness::kUnknown;
  std::string reason;  // human-readable: "heartbeat deadline", "connection
                       // dropped", "clean detach", ...
};

class HeartbeatMonitor final : public runtime::HeartbeatSink {
 public:
  explicit HeartbeatMonitor(HeartbeatMonitorOptions options = {});
  ~HeartbeatMonitor() override;

  HeartbeatMonitor(const HeartbeatMonitor&) = delete;
  HeartbeatMonitor& operator=(const HeartbeatMonitor&) = delete;

  // Called (once, at setup, before replicas report) to receive every
  // liveness transition. Invoked outside the monitor lock, possibly from a
  // server connection handler or the watchdog thread.
  void set_event_callback(std::function<void(const ReplicaEvent&)> callback);

  // Called with the finished iteration's stats the moment its report set
  // completes (replicas_reported reaches expected_replicas; requires
  // expected_replicas > 0 — with an unknown fleet size there is no "complete"
  // moment to fire on). This is the straggler *signal* the rebalance control
  // loop subscribes to. Invoked outside the monitor lock from whatever
  // thread delivered the completing heartbeat; same drain guarantee as
  // set_event_callback (setting nullptr waits out in-flight deliveries).
  void set_straggler_callback(
      std::function<void(const IterationHeartbeatStats&)> callback);

  // runtime::HeartbeatSink: one replica finished one iteration. A duplicate
  // (replica, iteration) report overwrites — a reconnecting executor may
  // legitimately resend its last heartbeat. Refreshes the liveness deadline
  // and revives kSuspect (never kDead — see the sticky rule above).
  void OnHeartbeat(int32_t replica, int64_t iteration,
                   double wall_ms) override;
  void OnReplicaAttached(int32_t replica) override;
  void OnReplicaDisconnected(int32_t replica, bool clean) override;
  // The replica asked to leave the fleet gracefully: transitions it to
  // kDraining and fires the event — the MembershipCoordinator's cue to fence
  // it, repost its backlog, and shrink the expected fleet. Ignored for dead
  // replicas (their plans already moved; the server evicts them instead).
  void OnReplicaDrainRequested(int32_t replica) override;
  bool IsReplicaDead(int32_t replica) const override;

  // Elastic membership: re-gate iteration completion (the straggler-callback
  // fire and ForIteration's partial-set guard) on a new fleet size mid-epoch.
  // Shrinking can complete report sets retroactively — an iteration stuck at
  // N-1 of N reporters is complete at N-1 of N-1 — so a shrink fires the
  // straggler callback for every newly-complete iteration (exactly once per
  // iteration, ever; a later growth never un-fires or re-fires one).
  void set_expected_replicas(int32_t expected);
  int32_t expected_replicas() const;

  // Applies the deadline transitions due as of now; returns how many fired.
  // The watchdog calls this periodically; tests call it directly.
  int PollLiveness();

  ReplicaLiveness Liveness(int32_t replica) const;
  // Replicas declared dead so far, ascending.
  std::vector<int32_t> DeadReplicas() const;
  // Replicas the monitor has seen at all (any state past kUnknown),
  // ascending. The fleet barrier: a trainer that must not start publishing
  // until its executors attached waits on this count.
  std::vector<int32_t> KnownReplicas() const;

  // Snapshot of iteration `iteration` (zeros when nothing reported yet).
  IterationHeartbeatStats ForIteration(int64_t iteration) const;

  // Last iteration `replica` completed; -1 before its first heartbeat. The
  // per-replica progress frontier.
  int64_t LastIteration(int32_t replica) const;

  // Replicas whose progress frontier lags the most advanced replica by more
  // than `max_lag` iterations — the liveness (as opposed to latency) view of
  // straggling: a replica that stopped heartbeating entirely shows up here
  // even though it contributes no wall-ms samples to lag behind on.
  std::vector<int32_t> LaggingReplicas(int64_t max_lag) const;

  int64_t total_heartbeats() const;
  const HeartbeatMonitorOptions& options() const { return options_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct ReplicaState {
    ReplicaLiveness state = ReplicaLiveness::kUnknown;
    Clock::time_point last_seen;  // last attach or heartbeat
    // Set on an unclean drop under a grace: death fires here unless the
    // replica is seen again first.
    std::optional<Clock::time_point> grace_deadline;
  };

  IterationHeartbeatStats ForIterationLocked(int64_t iteration) const;
  // Transition + event record; caller holds mu_ and owns delivering
  // `events` after unlocking (FireEvents).
  void TransitionLocked(int32_t replica, ReplicaLiveness to,
                        const char* reason, std::vector<ReplicaEvent>* events);
  void FireEvents(const std::vector<ReplicaEvent>& events);
  void WatchdogLoop();

  HeartbeatMonitorOptions options_;
  mutable std::mutex mu_;
  // The live fleet size, options_.expected_replicas at construction and
  // adjusted by set_expected_replicas on join/drain. Kept apart from options_
  // so options() stays an immutable snapshot of the configuration. Guarded by
  // mu_.
  int32_t expected_replicas_ = 0;
  // Iterations whose completion already fired the straggler callback — the
  // exactly-once guard now that a shrinking fleet can complete a set both by
  // a fresh heartbeat and by set_expected_replicas. Guarded by mu_.
  std::set<int64_t> straggler_fired_;
  int64_t total_heartbeats_ = 0;
  std::map<int32_t, int64_t> last_iteration_;  // replica -> frontier
  // iteration -> (replica -> wall_ms). Iterations are short-lived keys; the
  // trainer consumes stats per iteration, but nothing is evicted — an epoch
  // is thousands of iterations of a few replicas each, far below memory
  // relevance.
  std::map<int64_t, std::map<int32_t, double>> completions_;

  // Median scratch for ForIterationLocked, reused across calls so the
  // per-iteration stats query (trainer hot loop, once per iteration) stops
  // allocating once it has grown to the fleet size. Guarded by mu_.
  mutable std::vector<double> wall_scratch_;

  std::map<int32_t, ReplicaState> replicas_;  // guarded by mu_
  std::function<void(const ReplicaEvent&)> event_callback_;  // guarded by mu_
  // Fired when an iteration's report set completes; guarded by mu_, shares
  // the in-flight drain protocol below with event_callback_.
  std::function<void(const IterationHeartbeatStats&)> straggler_callback_;
  // Deliveries currently running outside mu_; set_event_callback drains them
  // so a subscriber can unregister safely at its own teardown.
  int callbacks_in_flight_ = 0;  // guarded by mu_
  mutable std::condition_variable callback_cv_;

  // Watchdog: ticks PollLiveness while any deadline is armed.
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;  // guarded by mu_
  std::thread watchdog_;
};

}  // namespace dynapipe::service

#endif  // DYNAPIPE_SRC_SERVICE_HEARTBEAT_MONITOR_H_
