// Elastic executor membership: join, drain, and mid-epoch handoff.
//
// Recovery reacts to replicas that *die*; membership reacts to replicas that
// *arrive* or *leave on purpose*. The MembershipCoordinator subscribes to the
// liveness event stream downstream of RecoveryCoordinator (recovery acts
// first on every event, then forwards it here) and closes the two elastic
// loops:
//
//   join  — a replica outside the known fleet turns kAlive (a wire attach
//           with the kAttachCapJoin capability, or a bare shm
//           AnnounceReplica: admission is driven by the liveness event, so
//           the shm path needs no attach frame at all). The coordinator
//           admits it, grows the monitor's expected fleet size, and steals a
//           fair share of the most-loaded member's *tail* backlog to the
//           joiner at spare iteration keys — the joiner polls at the spare
//           base, so the stolen work is exactly what it finds.
//
//   drain — a member turns kDraining (wire kDrainRequest or the shm slot's
//           drain word). The coordinator fences it in the store (so a racing
//           rebalance or recovery move reads kDestinationTaken and retries
//           elsewhere), reposts its unfetched backlog round-robin to the
//           surviving members at spare keys, shrinks the expected fleet
//           size (which may retroactively complete straggler report sets),
//           and acknowledges — over the wire the server's kDrainAck reply
//           *is* the ack (the event chain runs synchronously inside
//           NotifyReplicaDrainRequested); on shm the coordinator calls the
//           drain_ack hook (ShmInstructionStore::AcknowledgeDrain). The
//           drainer then finishes in-flight work and detaches cleanly.
//
// Spare keys come from the same SpareKeyAllocator recovery and rebalance
// share, so the three coordinators moving plans into one store can never
// pick colliding destination keys.
//
// Thread-safe: events arrive from server connection handlers, the shm
// poller, and the watchdog concurrently. Construct after the
// RecoveryCoordinator (it registers as recovery's downstream) and destroy
// before it.
#ifndef DYNAPIPE_SRC_SERVICE_MEMBERSHIP_H_
#define DYNAPIPE_SRC_SERVICE_MEMBERSHIP_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <vector>

#include "src/runtime/instruction_store.h"
#include "src/service/heartbeat_monitor.h"
#include "src/service/recovery.h"

namespace dynapipe::service {

struct MembershipOptions {
  // The fleet configured at epoch start; replicas outside this set that turn
  // alive are joiners.
  std::vector<int32_t> initial_replicas;
  // First spare iteration key when no shared allocator is passed — normally
  // the epoch's iteration count (where open-ended executors poll).
  int64_t spare_iteration_base = 0;
  // Spare-key source shared with recovery and rebalance so destination keys
  // never collide. Leave null to create a private one (tests).
  std::shared_ptr<SpareKeyAllocator> spare_keys;
  // Cap on backlog stolen for one joiner; 0 = the fair share
  // (donor backlog / new fleet size) with no cap.
  int32_t join_steal_max = 0;
  // Replicas whose backlog must never be stolen for a joiner (pipeline
  // anchors, same meaning as RebalanceOptions::immovable_replicas).
  std::vector<int32_t> immovable_replicas;
  // Backend acknowledgement for a completed drain handoff. The shm path
  // passes ShmInstructionStore::AcknowledgeDrain; the wire path leaves it
  // null because the server's kDrainAck reply (sent after the synchronous
  // event chain returns) is the acknowledgement.
  std::function<void(int32_t)> drain_ack;
};

// What membership has done so far; folded into EpochResult by the trainer.
struct MembershipReport {
  std::vector<int32_t> joined;   // admission order
  std::vector<int32_t> drained;  // acknowledgement order
  int64_t join_stolen_iterations = 0;    // backlog moved to joiners
  int64_t drain_reposted_iterations = 0;  // backlog moved off drainers
};

class MembershipCoordinator {
 public:
  // Registers itself as `recovery`'s downstream event tap. No pointer is
  // owned; all must outlive the coordinator. The store must have a recovery
  // surface (supports_recovery()) — membership moves plans the same way
  // recovery does.
  MembershipCoordinator(runtime::InstructionStoreInterface* store,
                        HeartbeatMonitor* monitor,
                        RecoveryCoordinator* recovery,
                        MembershipOptions options);
  ~MembershipCoordinator();

  MembershipCoordinator(const MembershipCoordinator&) = delete;
  MembershipCoordinator& operator=(const MembershipCoordinator&) = delete;

  MembershipReport report() const;

  // The members currently counted toward the expected fleet size (admitted,
  // not dead, not draining), ascending. Diagnostic/test surface.
  std::vector<int32_t> ActiveMembers() const;

 private:
  void OnEvent(const ReplicaEvent& event);
  // Members currently expected to report each iteration. Caller holds mu_.
  int32_t ExpectedLocked() const;

  runtime::InstructionStoreInterface* store_;
  HeartbeatMonitor* monitor_;
  RecoveryCoordinator* recovery_;
  MembershipOptions options_;
  std::shared_ptr<SpareKeyAllocator> spare_keys_;

  mutable std::mutex mu_;
  std::set<int32_t> members_;   // admitted fleet (initial + joiners)
  std::set<int32_t> draining_;  // drain handled, detach pending
  std::set<int32_t> dead_;      // sticky, mirrors the monitor
  MembershipReport report_;     // guarded by mu_
};

}  // namespace dynapipe::service

#endif  // DYNAPIPE_SRC_SERVICE_MEMBERSHIP_H_
