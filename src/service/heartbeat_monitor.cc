#include "src/service/heartbeat_monitor.h"

#include <algorithm>

namespace dynapipe::service {

HeartbeatMonitor::HeartbeatMonitor(HeartbeatMonitorOptions options)
    : options_(options) {}

void HeartbeatMonitor::OnHeartbeat(int32_t replica, int64_t iteration,
                                   double wall_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  ++total_heartbeats_;
  auto [it, inserted] = last_iteration_.emplace(replica, iteration);
  if (!inserted) {
    it->second = std::max(it->second, iteration);
  }
  completions_[iteration][replica] = wall_ms;
}

IterationHeartbeatStats HeartbeatMonitor::ForIteration(
    int64_t iteration) const {
  std::lock_guard<std::mutex> lock(mu_);
  return ForIterationLocked(iteration);
}

IterationHeartbeatStats HeartbeatMonitor::ForIterationLocked(
    int64_t iteration) const {
  IterationHeartbeatStats stats;
  stats.iteration = iteration;
  const auto it = completions_.find(iteration);
  if (it == completions_.end() || it->second.empty()) {
    return stats;
  }
  const std::map<int32_t, double>& by_replica = it->second;
  stats.replicas_reported = static_cast<int32_t>(by_replica.size());
  std::vector<double> walls;
  walls.reserve(by_replica.size());
  for (const auto& [replica, wall_ms] : by_replica) {
    walls.push_back(wall_ms);
    stats.max_wall_ms = std::max(stats.max_wall_ms, wall_ms);
  }
  // Median by the usual even/odd convention; nth_element twice stays O(n).
  const size_t mid = walls.size() / 2;
  std::nth_element(walls.begin(), walls.begin() + mid, walls.end());
  stats.median_wall_ms = walls[mid];
  if (walls.size() % 2 == 0) {
    std::nth_element(walls.begin(), walls.begin() + (mid - 1),
                     walls.begin() + mid);
    stats.median_wall_ms = (stats.median_wall_ms + walls[mid - 1]) / 2.0;
  }
  const double threshold =
      options_.straggler_multiple * stats.median_wall_ms +
      options_.min_straggler_gap_ms;
  for (const auto& [replica, wall_ms] : by_replica) {
    if (wall_ms > threshold) {
      stats.stragglers.push_back(replica);  // map order = ascending replica
    }
  }
  return stats;
}

int64_t HeartbeatMonitor::LastIteration(int32_t replica) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = last_iteration_.find(replica);
  return it == last_iteration_.end() ? -1 : it->second;
}

std::vector<int32_t> HeartbeatMonitor::LaggingReplicas(int64_t max_lag) const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t frontier = -1;
  for (const auto& [replica, iteration] : last_iteration_) {
    frontier = std::max(frontier, iteration);
  }
  std::vector<int32_t> lagging;
  for (const auto& [replica, iteration] : last_iteration_) {
    if (frontier - iteration > max_lag) {
      lagging.push_back(replica);
    }
  }
  return lagging;
}

int64_t HeartbeatMonitor::total_heartbeats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_heartbeats_;
}

}  // namespace dynapipe::service
