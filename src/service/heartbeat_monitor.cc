#include "src/service/heartbeat_monitor.h"

#include <algorithm>

#include "src/common/metrics.h"

namespace dynapipe::service {

const char* ReplicaLivenessName(ReplicaLiveness state) {
  switch (state) {
    case ReplicaLiveness::kUnknown: return "unknown";
    case ReplicaLiveness::kAlive: return "alive";
    case ReplicaLiveness::kSuspect: return "suspect";
    case ReplicaLiveness::kDead: return "dead";
    case ReplicaLiveness::kDetached: return "detached";
    case ReplicaLiveness::kDraining: return "draining";
  }
  return "?";
}

HeartbeatMonitor::HeartbeatMonitor(HeartbeatMonitorOptions options)
    : options_(options), expected_replicas_(options.expected_replicas) {
  const bool deadlines = options_.suspect_after_ms > 0.0 ||
                         options_.dead_after_ms > 0.0 ||
                         options_.connection_grace_ms > 0.0;
  if (deadlines && options_.watchdog) {
    watchdog_ = std::thread([this] { WatchdogLoop(); });
  }
}

HeartbeatMonitor::~HeartbeatMonitor() {
  if (watchdog_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      watchdog_stop_ = true;
    }
    watchdog_cv_.notify_all();
    watchdog_.join();
  }
}

void HeartbeatMonitor::set_event_callback(
    std::function<void(const ReplicaEvent&)> callback) {
  std::unique_lock<std::mutex> lock(mu_);
  event_callback_ = std::move(callback);
  // Swapping the callback out (to nullptr at subscriber teardown) must not
  // return while a delivery is mid-flight on another thread — the subscriber
  // is about to be destroyed. Wait for in-flight deliveries to drain; new
  // deliveries see the new callback.
  callback_cv_.wait(lock, [&] { return callbacks_in_flight_ == 0; });
}

void HeartbeatMonitor::set_straggler_callback(
    std::function<void(const IterationHeartbeatStats&)> callback) {
  std::unique_lock<std::mutex> lock(mu_);
  straggler_callback_ = std::move(callback);
  // Same drain rule as set_event_callback: unregistering (nullptr) must not
  // return while a delivery runs on another thread.
  callback_cv_.wait(lock, [&] { return callbacks_in_flight_ == 0; });
}

void HeartbeatMonitor::TransitionLocked(int32_t replica, ReplicaLiveness to,
                                        const char* reason,
                                        std::vector<ReplicaEvent>* events) {
  ReplicaState& state = replicas_[replica];
  if (state.state == to) {
    return;
  }
  ReplicaEvent event;
  event.replica = replica;
  event.from = state.state;
  event.to = to;
  event.reason = reason;
  state.state = to;
  if (to != ReplicaLiveness::kSuspect) {
    state.grace_deadline.reset();
  }
  static common::Counter& transitions =
      common::MetricsRegistry::Instance().GetCounter(
          "liveness_transitions_total");
  transitions.Add();
  if (to == ReplicaLiveness::kDead) {
    static common::Counter& deaths =
        common::MetricsRegistry::Instance().GetCounter(
            "liveness_deaths_total");
    deaths.Add();
  }
  events->push_back(std::move(event));
}

void HeartbeatMonitor::FireEvents(const std::vector<ReplicaEvent>& events) {
  if (events.empty()) {
    return;
  }
  std::function<void(const ReplicaEvent&)> callback;
  {
    std::lock_guard<std::mutex> lock(mu_);
    callback = event_callback_;
    if (callback) {
      ++callbacks_in_flight_;
    }
  }
  if (!callback) {
    return;
  }
  for (const ReplicaEvent& event : events) {
    callback(event);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    --callbacks_in_flight_;
  }
  callback_cv_.notify_all();
}

void HeartbeatMonitor::OnHeartbeat(int32_t replica, int64_t iteration,
                                   double wall_ms) {
  std::vector<ReplicaEvent> events;
  std::optional<IterationHeartbeatStats> completed;
  std::function<void(const IterationHeartbeatStats&)> straggler_callback;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++total_heartbeats_;
    auto [it, inserted] = last_iteration_.emplace(replica, iteration);
    if (!inserted) {
      it->second = std::max(it->second, iteration);
    }
    std::map<int32_t, double>& by_replica = completions_[iteration];
    const auto [wall_it, fresh] = by_replica.try_emplace(replica, wall_ms);
    if (!fresh) {
      wall_it->second = wall_ms;
    }
    // The completing heartbeat: a *new* reporter just grew the set to the
    // expected fleet size. The straggler_fired_ guard makes the fire
    // exactly-once per iteration — a duplicate beat overwrites its wall but
    // cannot re-complete the set, and >= (not ==) keeps the fire alive when
    // the fleet shrank below an iteration's current reporter count between
    // its heartbeats. Snapshot the stats under the lock, deliver outside it.
    if (fresh && straggler_callback_ && expected_replicas_ > 0 &&
        static_cast<int32_t>(by_replica.size()) >= expected_replicas_ &&
        straggler_fired_.insert(iteration).second) {
      completed = ForIterationLocked(iteration);
      straggler_callback = straggler_callback_;
      ++callbacks_in_flight_;
    }

    ReplicaState& state = replicas_[replica];
    if (state.state != ReplicaLiveness::kDead) {  // dead is sticky
      state.last_seen = Clock::now();
      // A draining replica's in-flight completions refresh its deadline but
      // never revive it to kAlive — it is on its way out, not back.
      if (state.state != ReplicaLiveness::kDraining) {
        TransitionLocked(replica, ReplicaLiveness::kAlive, "heartbeat",
                         &events);
      }
    }
  }
  FireEvents(events);
  if (completed.has_value()) {
    straggler_callback(*completed);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --callbacks_in_flight_;
    }
    callback_cv_.notify_all();
  }
}

void HeartbeatMonitor::OnReplicaAttached(int32_t replica) {
  std::vector<ReplicaEvent> events;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ReplicaState& state = replicas_[replica];
    if (state.state != ReplicaLiveness::kDead) {  // a zombie stays dead
      state.last_seen = Clock::now();
      // Liveness touches (the shm poller relays Contains-poll activity as
      // attach) must not flip a drainer back to alive mid-handoff.
      if (state.state != ReplicaLiveness::kDraining) {
        TransitionLocked(replica, ReplicaLiveness::kAlive, "attached",
                         &events);
      }
    }
  }
  FireEvents(events);
}

void HeartbeatMonitor::OnReplicaDrainRequested(int32_t replica) {
  std::vector<ReplicaEvent> events;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ReplicaState& state = replicas_[replica];
    if (state.state != ReplicaLiveness::kDead) {  // too late: evicted instead
      state.last_seen = Clock::now();
      TransitionLocked(replica, ReplicaLiveness::kDraining, "drain requested",
                       &events);
    }
  }
  FireEvents(events);
}

void HeartbeatMonitor::OnReplicaDisconnected(int32_t replica, bool clean) {
  std::vector<ReplicaEvent> events;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ReplicaState& state = replicas_[replica];
    if (state.state == ReplicaLiveness::kDead) {
      // Already declared; the dropped zombie connection changes nothing.
    } else if (clean) {
      TransitionLocked(replica, ReplicaLiveness::kDetached, "clean detach",
                       &events);
    } else if (options_.connection_grace_ms > 0.0) {
      // Reconnect tolerance: suspect now, dead if not seen again in time.
      state.grace_deadline =
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double, std::milli>(
                                 options_.connection_grace_ms));
      TransitionLocked(replica, ReplicaLiveness::kSuspect,
                       "connection dropped", &events);
    } else {
      // The vanished-process case: the stream died with the replica still
      // attached and no grace is configured — declare death immediately, so
      // recovery starts without waiting out a heartbeat deadline.
      TransitionLocked(replica, ReplicaLiveness::kDead, "connection dropped",
                       &events);
    }
  }
  FireEvents(events);
}

bool HeartbeatMonitor::IsReplicaDead(int32_t replica) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = replicas_.find(replica);
  return it != replicas_.end() && it->second.state == ReplicaLiveness::kDead;
}

void HeartbeatMonitor::set_expected_replicas(int32_t expected) {
  std::vector<IterationHeartbeatStats> completed;
  std::function<void(const IterationHeartbeatStats&)> straggler_callback;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const int32_t previous = expected_replicas_;
    expected_replicas_ = expected;
    // A shrink can complete report sets retroactively: an iteration parked at
    // N-1 of N reporters — the drained replica's beat is never coming — is
    // complete at N-1 of N-1, and the rebalance loop downstream would
    // otherwise wait forever for a fire gated on a stale fleet size. The
    // straggler_fired_ guard keeps every fire exactly-once across both
    // completion paths.
    if (straggler_callback_ && expected > 0 && expected < previous) {
      for (const auto& [iteration, by_replica] : completions_) {
        if (static_cast<int32_t>(by_replica.size()) >= expected &&
            straggler_fired_.insert(iteration).second) {
          completed.push_back(ForIterationLocked(iteration));
        }
      }
      if (!completed.empty()) {
        straggler_callback = straggler_callback_;
        ++callbacks_in_flight_;
      }
    }
  }
  if (straggler_callback) {
    for (const IterationHeartbeatStats& stats : completed) {
      straggler_callback(stats);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --callbacks_in_flight_;
    }
    callback_cv_.notify_all();
  }
}

int32_t HeartbeatMonitor::expected_replicas() const {
  std::lock_guard<std::mutex> lock(mu_);
  return expected_replicas_;
}

int HeartbeatMonitor::PollLiveness() {
  std::vector<ReplicaEvent> events;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const Clock::time_point now = Clock::now();
    for (auto& [replica, state] : replicas_) {
      if (state.state != ReplicaLiveness::kAlive &&
          state.state != ReplicaLiveness::kSuspect &&
          state.state != ReplicaLiveness::kDraining) {
        continue;  // deadlines apply only while presence is expected — and a
                   // drainer that wedges instead of detaching must still die
      }
      const double silent_ms =
          std::chrono::duration<double, std::milli>(now - state.last_seen)
              .count();
      if (state.grace_deadline.has_value() && now >= *state.grace_deadline) {
        TransitionLocked(replica, ReplicaLiveness::kDead,
                         "no reconnect within grace", &events);
        continue;
      }
      if (options_.dead_after_ms > 0.0 && silent_ms > options_.dead_after_ms) {
        TransitionLocked(replica, ReplicaLiveness::kDead,
                         "heartbeat deadline", &events);
        continue;
      }
      if (state.state == ReplicaLiveness::kAlive &&
          options_.suspect_after_ms > 0.0 &&
          silent_ms > options_.suspect_after_ms) {
        TransitionLocked(replica, ReplicaLiveness::kSuspect,
                         "heartbeat overdue", &events);
      }
    }
  }
  FireEvents(events);
  return static_cast<int>(events.size());
}

ReplicaLiveness HeartbeatMonitor::Liveness(int32_t replica) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = replicas_.find(replica);
  return it == replicas_.end() ? ReplicaLiveness::kUnknown : it->second.state;
}

std::vector<int32_t> HeartbeatMonitor::DeadReplicas() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<int32_t> dead;
  for (const auto& [replica, state] : replicas_) {
    if (state.state == ReplicaLiveness::kDead) {
      dead.push_back(replica);  // map order = ascending
    }
  }
  return dead;
}

std::vector<int32_t> HeartbeatMonitor::KnownReplicas() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<int32_t> known;
  for (const auto& [replica, state] : replicas_) {
    if (state.state != ReplicaLiveness::kUnknown) {
      known.push_back(replica);  // map order = ascending
    }
  }
  return known;
}

void HeartbeatMonitor::WatchdogLoop() {
  // Tick fast enough that a deadline is detected within a fraction of
  // itself, clamped so near-zero test deadlines do not spin.
  double min_deadline_ms = 1e18;
  for (const double deadline :
       {options_.suspect_after_ms, options_.dead_after_ms,
        options_.connection_grace_ms}) {
    if (deadline > 0.0) {
      min_deadline_ms = std::min(min_deadline_ms, deadline);
    }
  }
  const auto tick = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double, std::milli>(
          std::clamp(min_deadline_ms / 4.0, 1.0, 50.0)));
  std::unique_lock<std::mutex> lock(mu_);
  while (!watchdog_stop_) {
    watchdog_cv_.wait_for(lock, tick, [&] { return watchdog_stop_; });
    if (watchdog_stop_) {
      break;
    }
    lock.unlock();
    PollLiveness();
    lock.lock();
  }
}

IterationHeartbeatStats HeartbeatMonitor::ForIteration(
    int64_t iteration) const {
  std::lock_guard<std::mutex> lock(mu_);
  return ForIterationLocked(iteration);
}

IterationHeartbeatStats HeartbeatMonitor::ForIterationLocked(
    int64_t iteration) const {
  IterationHeartbeatStats stats;
  stats.iteration = iteration;
  stats.replicas_expected = expected_replicas_;
  const auto it = completions_.find(iteration);
  if (it == completions_.end() || it->second.empty()) {
    return stats;
  }
  const std::map<int32_t, double>& by_replica = it->second;
  stats.replicas_reported = static_cast<int32_t>(by_replica.size());
  // Member scratch (mu_ is held): clear keeps capacity, so steady-state
  // queries allocate nothing.
  std::vector<double>& walls = wall_scratch_;
  walls.clear();
  walls.reserve(by_replica.size());
  for (const auto& [replica, wall_ms] : by_replica) {
    walls.push_back(wall_ms);
    stats.max_wall_ms = std::max(stats.max_wall_ms, wall_ms);
  }
  // Median by the usual even/odd convention; nth_element twice stays O(n).
  const size_t mid = walls.size() / 2;
  std::nth_element(walls.begin(), walls.begin() + mid, walls.end());
  stats.median_wall_ms = walls[mid];
  if (walls.size() % 2 == 0) {
    std::nth_element(walls.begin(), walls.begin() + (mid - 1),
                     walls.begin() + mid);
    stats.median_wall_ms = (stats.median_wall_ms + walls[mid - 1]) / 2.0;
  }
  // Flag stragglers only against a complete (or unknown-size) report set: a
  // median over the first 1–2 finishers is not a threshold, and comparing
  // later finishers against it mis-flags ordinary skew. Gated on the *live*
  // fleet size — after a drain, a full set of the survivors flags; a stale
  // pre-drain expectation must not suppress it.
  if (expected_replicas_ > 0 &&
      stats.replicas_reported < expected_replicas_) {
    return stats;
  }
  const double threshold =
      options_.straggler_multiple * stats.median_wall_ms +
      options_.min_straggler_gap_ms;
  for (const auto& [replica, wall_ms] : by_replica) {
    if (wall_ms > threshold) {
      stats.stragglers.push_back(replica);  // map order = ascending replica
    }
  }
  return stats;
}

int64_t HeartbeatMonitor::LastIteration(int32_t replica) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = last_iteration_.find(replica);
  return it == last_iteration_.end() ? -1 : it->second;
}

std::vector<int32_t> HeartbeatMonitor::LaggingReplicas(int64_t max_lag) const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t frontier = -1;
  for (const auto& [replica, iteration] : last_iteration_) {
    frontier = std::max(frontier, iteration);
  }
  std::vector<int32_t> lagging;
  for (const auto& [replica, iteration] : last_iteration_) {
    if (frontier - iteration > max_lag) {
      lagging.push_back(replica);
    }
  }
  return lagging;
}

int64_t HeartbeatMonitor::total_heartbeats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_heartbeats_;
}

}  // namespace dynapipe::service
