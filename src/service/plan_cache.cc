#include "src/service/plan_cache.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/metrics.h"

namespace dynapipe::service {
namespace {

// Process-wide gauge of the cache's estimated footprint (cached reference,
// see OBSERVABILITY.md). Multiple caches in one process overwrite each other
// — by design: in production exactly one plan cache exists per trainer.
common::Gauge& PlanCacheBytesGauge() {
  static common::Gauge& g =
      common::MetricsRegistry::Instance().GetGauge("plan_cache_bytes");
  return g;
}

// Packed canonical length pair of one sample: fold (GPT) then quantize, to
// match what the planner actually plans on.
uint64_t PackedPair(const data::Sample& s, bool fold, int32_t q) {
  int32_t input = s.input_len;
  int32_t target = s.target_len;
  if (fold) {
    input += target;
    target = 0;
  }
  input = PlanCache::Quantize(input, q);
  target = PlanCache::Quantize(target, q);
  return (static_cast<uint64_t>(static_cast<uint32_t>(input)) << 32) |
         static_cast<uint64_t>(static_cast<uint32_t>(target));
}

}  // namespace

PlanCache::PlanCache(PlanCacheOptions options) : options_(options) {
  DYNAPIPE_CHECK(options_.capacity >= 1);
}

int32_t PlanCache::Quantize(int32_t len, int32_t q) {
  if (q <= 1 || len <= 0) {
    return len;
  }
  return (len + q - 1) / q * q;
}

PlanSignature PlanCache::Signature(const std::vector<data::Sample>& minibatch,
                                   bool fold_target_lengths,
                                   int32_t quantization, uint64_t config_hash) {
  PlanSignature sig;
  sig.key.reserve(minibatch.size());
  for (const auto& s : minibatch) {
    sig.key.push_back(PackedPair(s, fold_target_lengths, quantization));
  }
  std::sort(sig.key.begin(), sig.key.end());
  uint64_t h = HashCombine(kHashBasis, config_hash);
  h = HashCombine(h, static_cast<uint64_t>(quantization));
  h = HashCombine(h, fold_target_lengths ? 1u : 0u);
  h = HashCombine(h, sig.key.size());
  for (const uint64_t k : sig.key) {
    h = HashCombine(h, k);
  }
  sig.hash = h;
  return sig;
}

std::vector<data::Sample> PlanCache::CanonicalizeForPlanning(
    const std::vector<data::Sample>& minibatch, bool fold_target_lengths,
    int32_t quantization) {
  std::vector<data::Sample> out = minibatch;
  if (quantization <= 1) {
    // Exact mode plans the raw samples (the planner folds decoder-only
    // lengths itself); returning them untouched keeps the miss path
    // bit-identical to inline planning with no rebind step.
    return out;
  }
  for (auto& s : out) {
    if (fold_target_lengths) {
      s.input_len = Quantize(s.input_len + s.target_len, quantization);
      s.target_len = 0;
    } else {
      s.input_len = Quantize(s.input_len, quantization);
      s.target_len = Quantize(s.target_len, quantization);
    }
  }
  return out;
}

runtime::IterationPlan PlanCache::Rebind(
    runtime::IterationPlan plan, const std::vector<data::Sample>& minibatch,
    bool fold_target_lengths, int32_t quantization) {
  // Bucket the new samples by canonical pair; every cached slot then pops a
  // matching sample. Signature equality guarantees the multisets line up.
  std::unordered_map<uint64_t, std::vector<const data::Sample*>> buckets;
  buckets.reserve(minibatch.size());
  for (const auto& s : minibatch) {
    buckets[PackedPair(s, fold_target_lengths, quantization)].push_back(&s);
  }
  size_t bound = 0;
  for (auto& replica : plan.replicas) {
    for (auto& micro_batch : replica.micro_batches) {
      for (auto& slot : micro_batch.samples) {
        // The cached plan's samples already carry canonical lengths (the
        // planner folded them, and quantized planning rounded them), so their
        // pair is the bucket key directly; quantizing again is the identity.
        const uint64_t key =
            PackedPair(slot, /*fold=*/fold_target_lengths, quantization);
        auto it = buckets.find(key);
        DYNAPIPE_CHECK_MSG(it != buckets.end() && !it->second.empty(),
                           "plan cache rebind: length multiset mismatch");
        slot = *it->second.back();
        it->second.pop_back();
        ++bound;
      }
    }
  }
  DYNAPIPE_CHECK_MSG(bound == minibatch.size(),
                     "plan cache rebind: sample count mismatch");
  // Recompute padding against the rebound samples: with quantization > 1 the
  // cached plan's stats were computed from rounded-up lengths as if they were
  // real, overstating efficiency. Real tokens are the new samples', padded
  // tokens the (still canonical) executed shapes'. At quantization == 1 the
  // rebound lengths equal the cached ones, so this is the identity and plans
  // stay bit-identical.
  plan.padding = mb::PaddingStats{};
  for (const auto& replica : plan.replicas) {
    const mb::PaddingStats stats = mb::ComputePaddingStats(replica.micro_batches);
    plan.padding.real_input_tokens += stats.real_input_tokens;
    plan.padding.padded_input_tokens += stats.padded_input_tokens;
    plan.padding.real_target_tokens += stats.real_target_tokens;
    plan.padding.padded_target_tokens += stats.padded_target_tokens;
  }
  return plan;
}

PlanCache::EntryList::iterator PlanCache::FindLocked(const PlanSignature& sig) {
  auto chain = index_.find(sig.hash);
  if (chain == index_.end()) {
    return entries_.end();
  }
  for (const auto it : chain->second) {
    if (it->sig == sig) {
      return it;
    }
  }
  return entries_.end();
}

std::optional<runtime::IterationPlan> PlanCache::Lookup(
    const PlanSignature& sig, const std::vector<data::Sample>& minibatch,
    bool fold_target_lengths, int32_t quantization) {
  std::shared_ptr<const runtime::IterationPlan> cached;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = FindLocked(sig);
    if (it == entries_.end()) {
      ++stats_.misses;
      return std::nullopt;
    }
    ++stats_.hits;
    entries_.splice(entries_.begin(), entries_, it);  // refresh LRU
    cached = it->plan;  // refcount bump only; the plan copy happens outside
  }
  // The shared_ptr keeps the plan alive even if the entry is evicted while we
  // copy; Rebind's by-value parameter is that copy.
  return Rebind(*cached, minibatch, fold_target_lengths, quantization);
}

std::optional<runtime::PlanSeed> PlanCache::LookupNearMiss(
    const PlanSignature& sig) {
  std::lock_guard<std::mutex> lock(mu_);
  EntryList::iterator best = entries_.end();
  size_t best_lcp = 0;
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->plan->partition_widths.empty()) {
      continue;  // e.g. a baseline plan — nothing to seed with
    }
    // Longest common prefix of the sorted length multisets. Prefix (not
    // intersection) mirrors what the planner can actually exploit: its DP
    // reuses work across batches exactly where the sorted orders agree.
    const auto [a, b] = std::mismatch(sig.key.begin(), sig.key.end(),
                                      it->sig.key.begin(), it->sig.key.end());
    const size_t lcp = static_cast<size_t>(a - sig.key.begin());
    if (lcp > best_lcp) {
      best_lcp = lcp;
      best = it;
    }
  }
  const size_t shorter =
      best == entries_.end()
          ? sig.key.size()
          : std::min(sig.key.size(), best->sig.key.size());
  if (best == entries_.end() || best_lcp * 2 < shorter) {
    ++stats_.near_miss_misses;
    return std::nullopt;
  }
  ++stats_.near_miss_hits;
  entries_.splice(entries_.begin(), entries_, best);  // refresh donor's LRU
  runtime::PlanSeed seed;
  seed.partition_widths = best->plan->partition_widths;
  return seed;
}

size_t PlanCache::EstimatePlanBytes(const runtime::IterationPlan& plan) {
  size_t bytes = sizeof(runtime::IterationPlan);
  bytes += plan.infeasible_reason.capacity();
  bytes += plan.predicted_peak_mb.capacity() * sizeof(double);
  bytes += plan.partition_widths.capacity() * sizeof(int32_t);
  for (const auto& replica : plan.replicas) {
    bytes += sizeof(runtime::ReplicaPlan);
    for (const auto& m : replica.micro_batches) {
      bytes += sizeof(mb::MicroBatch) + m.samples.capacity() * sizeof(data::Sample);
    }
    for (const auto& dev : replica.schedule.devices) {
      bytes += sizeof(dev) + dev.capacity() * sizeof(schedule::ScheduledOp);
    }
    for (const auto* ops : {&replica.timeline.fwd, &replica.timeline.bwd}) {
      for (const auto& row : *ops) {
        bytes += sizeof(row) + row.capacity() * sizeof(schedule::OpTimes);
      }
    }
    bytes += (replica.timeline.device_busy_ms.capacity() +
              replica.timeline.device_peak_mb.capacity()) *
             sizeof(double);
    for (const auto& dev : replica.exec_plan.devices) {
      bytes += sizeof(sim::DevicePlan) +
               dev.instructions.capacity() * sizeof(sim::Instruction);
    }
  }
  return bytes;
}

void PlanCache::Insert(const PlanSignature& sig,
                       const runtime::IterationPlan& plan) {
  if (!plan.feasible) {
    return;
  }
  // Copy the plan before taking the lock; a racing insert then only wastes
  // the copy instead of serializing other workers behind it.
  auto copy = std::make_shared<const runtime::IterationPlan>(plan);
  const size_t entry_bytes = sizeof(Entry) + sig.key.capacity() * sizeof(uint64_t) +
                             EstimatePlanBytes(*copy);
  std::lock_guard<std::mutex> lock(mu_);
  const auto existing = FindLocked(sig);
  if (existing != entries_.end()) {
    // Racing miss already filled this signature with the same deterministic
    // plan; keep the first copy.
    entries_.splice(entries_.begin(), entries_, existing);
    return;
  }
  entries_.push_front(Entry{sig, std::move(copy), entry_bytes});
  index_[sig.hash].push_back(entries_.begin());
  ++stats_.insertions;
  stats_.bytes += static_cast<int64_t>(entry_bytes);
  while (entries_.size() > 1 &&
         (entries_.size() > options_.capacity ||
          (options_.max_bytes > 0 &&
           stats_.bytes > static_cast<int64_t>(options_.max_bytes)))) {
    const auto victim = std::prev(entries_.end());
    auto& chain = index_[victim->sig.hash];
    chain.erase(std::find(chain.begin(), chain.end(), victim));
    if (chain.empty()) {
      index_.erase(victim->sig.hash);
    }
    stats_.bytes -= static_cast<int64_t>(victim->bytes);
    entries_.erase(victim);
    ++stats_.evictions;
  }
  PlanCacheBytesGauge().Set(stats_.bytes);
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

size_t PlanCache::bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<size_t>(stats_.bytes);
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace dynapipe::service
