#include "src/service/membership.h"

#include <algorithm>
#include <utility>

#include "src/common/metrics.h"
#include "src/common/trace.h"

namespace dynapipe::service {

namespace {
bool Contains(const std::vector<int32_t>& v, int32_t x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}
}  // namespace

MembershipCoordinator::MembershipCoordinator(
    runtime::InstructionStoreInterface* store, HeartbeatMonitor* monitor,
    RecoveryCoordinator* recovery, MembershipOptions options)
    : store_(store),
      monitor_(monitor),
      recovery_(recovery),
      options_(std::move(options)) {
  spare_keys_ = options_.spare_keys != nullptr
                    ? options_.spare_keys
                    : std::make_shared<SpareKeyAllocator>(
                          options_.spare_iteration_base);
  members_.insert(options_.initial_replicas.begin(),
                  options_.initial_replicas.end());
  recovery_->set_downstream(
      [this](const ReplicaEvent& event) { OnEvent(event); });
}

MembershipCoordinator::~MembershipCoordinator() {
  // set_downstream holds recovery's lock while swapping, and OnEvent is
  // invoked outside it — after this returns no new delivery can start on a
  // destroyed coordinator (the monitor's callback-drain protocol already
  // serialized the in-flight ones behind recovery's OnEvent).
  recovery_->set_downstream(nullptr);
}

MembershipReport MembershipCoordinator::report() const {
  std::lock_guard<std::mutex> lock(mu_);
  return report_;
}

std::vector<int32_t> MembershipCoordinator::ActiveMembers() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<int32_t> active;
  for (const int32_t replica : members_) {
    if (dead_.count(replica) == 0 && draining_.count(replica) == 0) {
      active.push_back(replica);
    }
  }
  return active;
}

int32_t MembershipCoordinator::ExpectedLocked() const {
  int32_t expected = 0;
  for (const int32_t replica : members_) {
    if (dead_.count(replica) == 0 && draining_.count(replica) == 0) {
      ++expected;
    }
  }
  return expected;
}

void MembershipCoordinator::OnEvent(const ReplicaEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  switch (event.to) {
    case ReplicaLiveness::kAlive: {
      if (members_.count(event.replica) != 0 ||
          dead_.count(event.replica) != 0) {
        break;  // a known member proving liveness, or a zombie — not a join
      }
      // Join: admit, grow the expected fleet, seed the joiner with a fair
      // share of the most-loaded member's tail backlog. Admission keys off
      // the liveness event, not the attach frame: a wire joiner declared
      // intent with kAttachCapJoin, a shm joiner just announced itself —
      // both surface here as an unknown replica turning alive.
      common::TraceSpan span("join", "membership", /*iteration=*/0,
                             event.replica);
      members_.insert(event.replica);
      store_->UnfenceReplica(event.replica);  // re-admission after a drain
      const int32_t expected = ExpectedLocked();
      monitor_->set_expected_replicas(expected);
      report_.joined.push_back(event.replica);
      static common::Counter& joins =
          common::MetricsRegistry::Instance().GetCounter(
              "membership_joins_total");
      joins.Add();

      // Donor: the member with the deepest unfetched backlog that is alive,
      // movable, and not mid-drain.
      int32_t donor = -1;
      std::vector<int64_t> donor_pending;
      for (const int32_t member : members_) {
        if (member == event.replica || dead_.count(member) != 0 ||
            draining_.count(member) != 0 ||
            Contains(options_.immovable_replicas, member) ||
            store_->IsReplicaFenced(member)) {
          continue;
        }
        std::vector<int64_t> pending = store_->PendingIterations(member);
        if (pending.size() > donor_pending.size()) {
          donor = member;
          donor_pending = std::move(pending);
        }
      }
      if (donor < 0 || donor_pending.empty()) {
        break;  // nothing resident to share; the joiner picks up reposts
      }
      int64_t share = static_cast<int64_t>(donor_pending.size()) /
                      std::max<int32_t>(expected, 1);
      if (options_.join_steal_max > 0) {
        share = std::min<int64_t>(share, options_.join_steal_max);
      }
      // Tail steal, like rebalance: the donor keeps the iterations it
      // reaches next (its fetch may already be in flight).
      int64_t moved = 0;
      for (auto it = donor_pending.rbegin();
           it != donor_pending.rend() && moved < share; ++it) {
        // Burn-on-allocation: a taken key advances, a vanished source means
        // the donor fetched it after all.
        for (int attempt = 0; attempt < 16; ++attempt) {
          const int64_t dst_iteration = spare_keys_->Next(event.replica);
          const runtime::RepostOutcome outcome =
              store_->Repost(*it, donor, dst_iteration, event.replica);
          if (outcome == runtime::RepostOutcome::kDestinationTaken) {
            continue;
          }
          if (outcome == runtime::RepostOutcome::kMoved) {
            ++moved;
            // The donor's poll loop stops at its first missing key, so hand
            // the vacated key back for reuse: a later repost to the donor
            // fills the gap instead of stranding a plan beyond it.
            spare_keys_->Release(donor, *it);
          }
          break;
        }
      }
      report_.join_stolen_iterations += moved;
      break;
    }
    case ReplicaLiveness::kDraining: {
      if (dead_.count(event.replica) != 0 ||
          draining_.count(event.replica) != 0) {
        break;  // zombie or duplicate request
      }
      // Drain: fence first so no in-flight rebalance/recovery move lands on
      // the leaver from here on, then hand its backlog to the survivors.
      common::TraceSpan span("drain", "membership", /*iteration=*/0,
                             event.replica);
      store_->FenceReplica(event.replica);
      draining_.insert(event.replica);
      members_.insert(event.replica);  // a drain implies membership
      std::vector<int32_t> survivors;
      for (const int32_t member : members_) {
        if (member == event.replica || dead_.count(member) != 0 ||
            draining_.count(member) != 0 ||
            store_->IsReplicaFenced(member)) {
          continue;
        }
        survivors.push_back(member);
      }
      const std::vector<int64_t> pending =
          store_->PendingIterations(event.replica);
      int64_t moved = 0;
      if (!survivors.empty()) {
        size_t next_survivor = 0;
        for (const int64_t iteration : pending) {
          const int32_t survivor = survivors[next_survivor];
          next_survivor = (next_survivor + 1) % survivors.size();
          for (int attempt = 0; attempt < 16; ++attempt) {
            const int64_t dst_iteration = spare_keys_->Next(survivor);
            const runtime::RepostOutcome outcome = store_->Repost(
                iteration, event.replica, dst_iteration, survivor);
            if (outcome == runtime::RepostOutcome::kDestinationTaken) {
              continue;
            }
            if (outcome == runtime::RepostOutcome::kMoved) {
              ++moved;
            }
            // kSourceGone: the leaver fetched it — in-flight work it will
            // finish before detaching. Nothing to move.
            break;
          }
        }
      }
      report_.drain_reposted_iterations += moved;
      // Shrink the expected fleet *after* the handoff: a retroactively
      // completed report set must see the reposted work already off the
      // leaver's key.
      monitor_->set_expected_replicas(ExpectedLocked());
      report_.drained.push_back(event.replica);
      static common::Counter& drains =
          common::MetricsRegistry::Instance().GetCounter(
              "membership_drains_total");
      drains.Add();
      // Green light. Over the wire the server replies kDrainAck when the
      // synchronous event chain (which ends here) returns; on shm this hook
      // flips the slot's drain word.
      if (options_.drain_ack) {
        options_.drain_ack(event.replica);
      }
      break;
    }
    case ReplicaLiveness::kDead: {
      // Recovery already moved (or dropped) the backlog; membership only
      // re-gates the fleet size. The fence, if any, stays: a dead replica
      // must never be a repost destination again.
      dead_.insert(event.replica);
      draining_.erase(event.replica);
      if (members_.count(event.replica) != 0) {
        monitor_->set_expected_replicas(ExpectedLocked());
      }
      break;
    }
    case ReplicaLiveness::kDetached: {
      if (draining_.count(event.replica) != 0) {
        // Clean exit of a drainer: the handoff already happened and the
        // expected count already shrank — just retire the member. The fence
        // stays up so a late rebalance can never target the departed id; a
        // re-join lifts it.
        draining_.erase(event.replica);
        members_.erase(event.replica);
      }
      break;
    }
    default:
      break;
  }
}

}  // namespace dynapipe::service
