// Degraded-mode recovery: the reaction half of the failure control loop.
//
// The HeartbeatMonitor *detects* (liveness state machine, ReplicaEvent
// stream); RecoveryCoordinator *acts*. It subscribes to the monitor's events
// and, on a kDead transition, executes the re-publish protocol:
//
//   1. snapshot the dead replica's unfetched backlog
//      (InstructionStore::PendingIterations);
//   2. move each resident plan to a surviving replica, round-robin, at a
//      *spare* iteration number (store-level Repost — plans are byte-stable
//      and keyed by (iteration, replica), so re-publish is a key move, no
//      re-plan, no re-encode). Spare numbers start at
//      `spare_iteration_base` (the epoch's iteration count) and grow per
//      survivor, because an open-ended executor that drained its own epoch
//      keeps polling exactly there — the reposted work is what it finds;
//   3. record the recovery (dead replicas, replanned iteration count,
//      detect-to-repost wall ms) for IterationRecord/EpochResult.
//
// FailurePolicy::kFailFast instead shuts the store down on the first death —
// every Push parked in capacity backpressure unblocks, the epoch aborts, and
// the caller reads fail_fast_triggered. kDegradeAndContinue (the default) is
// the paper-adjacent elastic behavior: finish the epoch on the survivors.
//
// Thread-safe: events arrive from server connection handlers and the
// monitor's watchdog concurrently. The coordinator unregisters itself from
// the monitor on destruction (construct it after the monitor, destroy it
// first).
#ifndef DYNAPIPE_SRC_SERVICE_RECOVERY_H_
#define DYNAPIPE_SRC_SERVICE_RECOVERY_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <vector>

#include "src/runtime/instruction_store.h"
#include "src/service/heartbeat_monitor.h"

namespace dynapipe::service {

// Hands out spare destination iteration numbers for re-published plans, one
// monotonic counter per destination replica starting at `base`. A key is
// burned the moment it is handed out — never reissued — so a destination
// that turns out taken (RepostOutcome::kDestinationTaken) is simply skipped
// and the next key tried, instead of being retried forever (the bug that
// silently lost every subsequent repost to that survivor). One allocator is
// *shared* by every coordinator moving plans into the same store (recovery +
// rebalance + membership), so their spare keys can never collide either.
//
// Release() is the hole-filler for *live* steal victims. An executor polls
// its keys strictly in order and gives up at the first gap, so a replica's
// pending set must stay contiguous from its poll cursor. A tail steal (join
// admission, straggler rebalance) vacates the victim's highest keys; if a
// later repost targeted that victim at a fresh key *beyond* the gap, the
// victim would idle out at the gap and strand the plan forever. Movers
// therefore release each stolen source key, and Next() reissues released
// keys smallest-first before minting fresh ones — reposts fill the gap,
// and any keys left unfilled form a trailing gap the victim cleanly ends
// on. (Keys of *dead* replicas are never released: the dead are never
// repost destinations, so their gaps are unreachable either way.)
// Thread-safe.
class SpareKeyAllocator {
 public:
  explicit SpareKeyAllocator(int64_t base) : base_(base) {}

  int64_t Next(int32_t replica) {
    std::lock_guard<std::mutex> lock(mu_);
    auto freed = released_.find(replica);
    if (freed != released_.end() && !freed->second.empty()) {
      const int64_t key = *freed->second.begin();
      freed->second.erase(freed->second.begin());
      return key;
    }
    auto [it, inserted] = next_.emplace(replica, base_);
    return it->second++;
  }

  // A tail steal vacated `key` on `replica`; reissue it before any fresh
  // key so reposts to that replica fill the gap in its poll sequence.
  void Release(int32_t replica, int64_t key) {
    std::lock_guard<std::mutex> lock(mu_);
    released_[replica].insert(key);
  }

 private:
  const int64_t base_;
  std::mutex mu_;
  std::map<int32_t, int64_t> next_;  // replica -> next spare iteration
  std::map<int32_t, std::set<int64_t>> released_;  // vacated, smallest first
};

enum class FailurePolicy : uint8_t {
  // First kDead aborts the epoch: the store shuts down (unblocking parked
  // pushes) and no plans move.
  kFailFast = 0,
  // Re-publish the dead replica's backlog to survivors and keep going.
  kDegradeAndContinue,
};

struct RecoveryOptions {
  FailurePolicy policy = FailurePolicy::kDegradeAndContinue;
  // The full replica set; survivors = replicas minus the dead so far. A
  // death outside this set (an unknown attacher) is recorded but moves no
  // plans — there is nothing published under its id.
  std::vector<int32_t> replicas;
  // First iteration number free for reposted plans on every survivor —
  // normally the epoch's iteration count, so reposts land exactly where an
  // open-ended executor polls after draining its own share.
  int64_t spare_iteration_base = 0;
  // Spare-key source. Leave null to let the coordinator create its own from
  // spare_iteration_base; pass a shared one when a RebalanceCoordinator
  // moves plans into the same store, so the two can never pick colliding
  // destination keys.
  std::shared_ptr<SpareKeyAllocator> spare_keys;
};

// What recovery has done so far; copied into EpochResult by the trainer.
struct RecoveryReport {
  std::vector<int32_t> dead_replicas;  // declaration order
  int64_t replanned_iterations = 0;    // plans moved to survivors
  int64_t dropped_iterations = 0;      // no survivor left to take them
  double recovery_ms = 0.0;            // total detect -> re-publish wall time
  bool fail_fast_triggered = false;
};

class RecoveryCoordinator {
 public:
  // Registers itself as `monitor`'s event callback. Neither pointer is
  // owned; both must outlive the coordinator. The store must be one with a
  // recovery surface (supports_recovery()) — the in-process store or the shm
  // segment; recovery always runs in the process where the plans live.
  RecoveryCoordinator(runtime::InstructionStoreInterface* store,
                      HeartbeatMonitor* monitor, RecoveryOptions options);
  ~RecoveryCoordinator();

  RecoveryCoordinator(const RecoveryCoordinator&) = delete;
  RecoveryCoordinator& operator=(const RecoveryCoordinator&) = delete;

  // Forwards every ReplicaEvent (after recovery acted on it) to `downstream`
  // — the MembershipCoordinator's subscription point, and an observation tap
  // for tests and logging. Same drain rule as the monitor's callbacks:
  // swapping the downstream out (to nullptr at subscriber teardown) does not
  // return while a delivery is mid-flight on another thread.
  void set_downstream(std::function<void(const ReplicaEvent&)> downstream);

  RecoveryReport report() const;

 private:
  void OnEvent(const ReplicaEvent& event);

  runtime::InstructionStoreInterface* store_;
  HeartbeatMonitor* monitor_;
  RecoveryOptions options_;
  std::shared_ptr<SpareKeyAllocator> spare_keys_;

  mutable std::mutex mu_;
  RecoveryReport report_;                    // guarded by mu_
  std::function<void(const ReplicaEvent&)> downstream_;  // guarded by mu_
  // Downstream deliveries currently running outside mu_; set_downstream
  // drains them so the subscriber can unregister at its own teardown.
  int downstream_in_flight_ = 0;  // guarded by mu_
  mutable std::condition_variable downstream_cv_;
};

}  // namespace dynapipe::service

#endif  // DYNAPIPE_SRC_SERVICE_RECOVERY_H_
