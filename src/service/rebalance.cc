#include "src/service/rebalance.h"

#include <algorithm>
#include <utility>

#include "src/common/metrics.h"
#include "src/common/trace.h"

namespace dynapipe::service {

namespace {
bool Contains(const std::vector<int32_t>& v, int32_t x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}
}  // namespace

RebalanceCoordinator::RebalanceCoordinator(
    runtime::InstructionStoreInterface* store, HeartbeatMonitor* monitor,
    RebalanceOptions options)
    : store_(store), monitor_(monitor), options_(std::move(options)) {
  spare_keys_ = options_.spare_keys != nullptr
                    ? options_.spare_keys
                    : std::make_shared<SpareKeyAllocator>(
                          options_.spare_iteration_base);
  monitor_->set_straggler_callback(
      [this](const IterationHeartbeatStats& stats) {
        OnIterationComplete(stats);
      });
}

RebalanceCoordinator::~RebalanceCoordinator() {
  // Drains in-flight deliveries before returning, so OnIterationComplete can
  // never run on a destroyed coordinator.
  monitor_->set_straggler_callback(nullptr);
}

RebalanceReport RebalanceCoordinator::report() const {
  std::lock_guard<std::mutex> lock(mu_);
  return report_;
}

void RebalanceCoordinator::OnIterationComplete(
    const IterationHeartbeatStats& stats) {
  std::lock_guard<std::mutex> lock(mu_);
  // Streak bookkeeping: the callback fires only on complete report sets, so
  // every configured replica either straggled this iteration or kept pace —
  // keeping pace resets its streak.
  for (const int32_t replica : options_.replicas) {
    if (Contains(stats.stragglers, replica)) {
      ++consecutive_[replica];
    } else {
      consecutive_[replica] = 0;
    }
  }

  for (const int32_t slow : stats.stragglers) {
    if (!Contains(options_.replicas, slow) ||
        Contains(options_.immovable_replicas, slow)) {
      continue;
    }
    if (consecutive_[slow] < options_.consecutive_flags) {
      continue;  // not persistent yet
    }
    const auto cooldown = cooldown_until_.find(slow);
    if (cooldown != cooldown_until_.end() &&
        stats.iteration < cooldown->second) {
      continue;  // hysteresis: recently shed work, let it show in the walls
    }
    if (monitor_->Liveness(slow) == ReplicaLiveness::kDead) {
      continue;  // recovery's problem now, not rebalance's
    }
    // Fast replicas: configured, kept pace this iteration, not dead, not
    // fenced mid-drain, and not exempt from taking work. (A drain landing
    // after this snapshot is still safe: the store-level fence answers the
    // Repost with kDestinationTaken and the key chain retries.)
    std::vector<int32_t> destinations;
    for (const int32_t replica : options_.replicas) {
      if (replica == slow || Contains(stats.stragglers, replica) ||
          Contains(options_.immovable_replicas, replica) ||
          monitor_->Liveness(replica) == ReplicaLiveness::kDead ||
          store_->IsReplicaFenced(replica)) {
        continue;
      }
      destinations.push_back(replica);
    }
    if (destinations.empty()) {
      continue;  // everyone else is slow, dead, or pinned — nothing to do
    }
    // Steal from the *tail* of the backlog: the slow replica keeps the
    // iterations it reaches next (its fetch may already be in flight), and
    // the furthest-future plans are the ones a fast replica overtakes.
    const std::vector<int64_t> pending = store_->PendingIterations(slow);
    int32_t moved = 0;
    size_t next_destination = 0;
    for (auto it = pending.rbegin();
         it != pending.rend() && moved < options_.max_moves_per_event; ++it) {
      const int32_t destination =
          destinations[next_destination % destinations.size()];
      // Same burn-on-allocation discipline as recovery: a taken key advances,
      // a vanished source means the slow replica fetched it after all.
      for (int attempt = 0; attempt < 16; ++attempt) {
        const int64_t dst_iteration = spare_keys_->Next(destination);
        const runtime::RepostOutcome outcome =
            store_->Repost(*it, slow, dst_iteration, destination);
        if (outcome == runtime::RepostOutcome::kDestinationTaken) {
          continue;
        }
        if (outcome == runtime::RepostOutcome::kMoved) {
          common::TraceSpan span("rebalanced", "plan", *it, slow);
          ++moved;
          ++next_destination;
          // The straggler is alive and still polling in key order: release
          // the vacated key so any later repost to it fills the gap rather
          // than landing beyond a hole it will never cross.
          spare_keys_->Release(slow, *it);
          static common::Counter& moved_total =
              common::MetricsRegistry::Instance().GetCounter(
                  "rebalance_moved_total");
          moved_total.Add();
        }
        break;
      }
    }
    if (moved > 0) {
      ++report_.events;
      report_.moved_iterations += moved;
      if (!Contains(report_.rebalanced_replicas, slow)) {
        report_.rebalanced_replicas.push_back(slow);
      }
      cooldown_until_[slow] =
          stats.iteration + options_.hysteresis_iterations;
      consecutive_[slow] = 0;  // a fresh streak must build before the next
      static common::Counter& events =
          common::MetricsRegistry::Instance().GetCounter(
              "rebalance_events_total");
      events.Add();
    }
  }
}

}  // namespace dynapipe::service
