// Binary serialization of execution plans.
//
// The paper distributes compiled instruction streams to executors through a
// Redis store holding *serialized* plans (§3): dataloader-side planners encode,
// executors decode. This is that wire format — a compact varint byte layout
// that round-trips sim::ExecutionPlan losslessly (every field of every
// instruction kind), so InstructionStore's serialized mode exercises the
// publish-before-fetch contract across a real encode/decode boundary instead
// of passing in-process pointers around.
//
// Layout (all multi-byte integers are LEB128 varints; signed fields are
// zigzag-encoded so the -1 sentinels of `peer`/`fusion_group` stay 1 byte):
//   magic "DPEX", version byte,
//   zigzag(num_microbatches), varint(num_devices),
//   per device: zigzag(device), varint(num_instructions),
//   per instruction: type byte, zigzag(microbatch), zigzag(peer),
//     zigzag(bytes), zigzag(num_samples), zigzag(input_len),
//     zigzag(target_len), recompute byte, zigzag(fusion_group).
// Decoding a malformed buffer (truncation, bad magic/version, out-of-range
// enum, trailing bytes) must never produce a plan: DecodeExecutionPlan is
// fatal — a corrupted plan must not reach an executor — while
// TryDecodeExecutionPlan reports the malformation as a clean error so callers
// that own the byte source (the cross-process transport, fuzzers) can reject
// bad input without crashing the process that received it.
#ifndef DYNAPIPE_SRC_SERVICE_PLAN_SERDE_H_
#define DYNAPIPE_SRC_SERVICE_PLAN_SERDE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "src/sim/instruction.h"

namespace dynapipe::service {

inline constexpr char kPlanSerdeMagic[4] = {'D', 'P', 'E', 'X'};
inline constexpr uint8_t kPlanSerdeVersion = 1;

// Varint primitives, exposed for tests and future serialized records (plan
// metadata, cache snapshots).
void AppendVarint(uint64_t v, std::string* out);
void AppendZigzag(int64_t v, std::string* out);
// Parse starting at *pos, advancing it past the consumed bytes. Fatal on
// truncated or overlong input.
uint64_t ParseVarint(std::string_view bytes, size_t* pos);
int64_t ParseZigzag(std::string_view bytes, size_t* pos);
// Non-fatal variants: return false (leaving *out unspecified) instead of
// aborting on truncated/overlong input. *pos still advances past whatever was
// consumed. These are what the transport layer parses network input with.
bool TryParseVarint(std::string_view bytes, size_t* pos, uint64_t* out);
bool TryParseZigzag(std::string_view bytes, size_t* pos, int64_t* out);

// One instruction, appended to / parsed from a byte buffer. These are the
// per-instruction hooks the whole-plan codec is built from.
void AppendInstruction(const sim::Instruction& instr, std::string* out);
sim::Instruction ParseInstruction(std::string_view bytes, size_t* pos);

// Whole-plan codec. Decode(Encode(p)) == p for every well-formed plan.
std::string EncodeExecutionPlan(const sim::ExecutionPlan& plan);
// Encodes into the caller's buffer (cleared first, capacity kept). Publishers
// that push plans in a steady-state loop (remote store, mux client, shm
// store) reuse one scratch buffer per thread so encoding allocates nothing
// once the buffer has grown to plan size.
void EncodeExecutionPlanInto(const sim::ExecutionPlan& plan, std::string* out);
sim::ExecutionPlan DecodeExecutionPlan(std::string_view bytes);
// Non-fatal decode: nullopt on any malformed input (truncation, bad
// magic/version, out-of-range enum, implausible counts, trailing bytes), with
// a description in *error when provided. DecodeExecutionPlan is this plus a
// fatal check.
std::optional<sim::ExecutionPlan> TryDecodeExecutionPlan(
    std::string_view bytes, std::string* error = nullptr);

}  // namespace dynapipe::service

#endif  // DYNAPIPE_SRC_SERVICE_PLAN_SERDE_H_
