#include "src/service/recovery.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "src/common/metrics.h"

namespace dynapipe::service {

RecoveryCoordinator::RecoveryCoordinator(
    runtime::InstructionStoreInterface* store, HeartbeatMonitor* monitor,
    RecoveryOptions options)
    : store_(store), monitor_(monitor), options_(std::move(options)) {
  spare_keys_ = options_.spare_keys != nullptr
                    ? options_.spare_keys
                    : std::make_shared<SpareKeyAllocator>(
                          options_.spare_iteration_base);
  monitor_->set_event_callback(
      [this](const ReplicaEvent& event) { OnEvent(event); });
}

RecoveryCoordinator::~RecoveryCoordinator() {
  // Drains in-flight deliveries before returning, so OnEvent can never run
  // on a destroyed coordinator.
  monitor_->set_event_callback(nullptr);
}

void RecoveryCoordinator::set_downstream(
    std::function<void(const ReplicaEvent&)> downstream) {
  std::unique_lock<std::mutex> lock(mu_);
  downstream_ = std::move(downstream);
  // Swapping the downstream out (to nullptr at subscriber teardown) must not
  // return while a delivery is mid-flight on another thread — the subscriber
  // is about to be destroyed. New deliveries see the new downstream.
  downstream_cv_.wait(lock, [&] { return downstream_in_flight_ == 0; });
}

RecoveryReport RecoveryCoordinator::report() const {
  std::lock_guard<std::mutex> lock(mu_);
  return report_;
}

void RecoveryCoordinator::OnEvent(const ReplicaEvent& event) {
  if (event.to == ReplicaLiveness::kDead) {
    const auto t0 = std::chrono::steady_clock::now();
    std::unique_lock<std::mutex> lock(mu_);
    report_.dead_replicas.push_back(event.replica);
    if (options_.policy == FailurePolicy::kFailFast) {
      report_.fail_fast_triggered = true;
      lock.unlock();
      // Unblocks every Push parked in capacity backpressure (including ones
      // stalled on the dead replica's unfetched slots) and disarms future
      // pushes: the epoch is over.
      store_->Shutdown();
      lock.lock();
    } else {
      // Survivors: the configured set minus everyone declared dead so far,
      // minus anyone fenced mid-drain — a leaver handing off its own backlog
      // must not inherit a dead replica's. (The store-level fence catches the
      // race where the drain lands after this snapshot: the Repost comes back
      // kDestinationTaken and the key chain advances.)
      std::vector<int32_t> survivors;
      for (const int32_t replica : options_.replicas) {
        if (std::find(report_.dead_replicas.begin(),
                      report_.dead_replicas.end(),
                      replica) == report_.dead_replicas.end() &&
            !store_->IsReplicaFenced(replica)) {
          survivors.push_back(replica);
        }
      }
      const std::vector<int64_t> pending =
          store_->PendingIterations(event.replica);
      if (survivors.empty()) {
        // Nobody left to take the work; free the slots so parked pushes
        // unblock, and record the loss.
        report_.dropped_iterations +=
            static_cast<int64_t>(store_->DropReplica(event.replica));
      } else {
        size_t next_survivor = 0;
        for (const int64_t iteration : pending) {
          const int32_t survivor = survivors[next_survivor];
          next_survivor = (next_survivor + 1) % survivors.size();
          // Spare keys are burned on allocation: a taken destination means
          // *that key* is unusable (someone else published there), not that
          // the plan is unrecoverable — advance to the next key and retry.
          // Collapsing the two failure modes used to wedge the survivor's
          // counter on a taken key and silently lose every later repost.
          for (int attempt = 0; attempt < 16; ++attempt) {
            const int64_t dst_iteration = spare_keys_->Next(survivor);
            const runtime::RepostOutcome outcome = store_->Repost(
                iteration, event.replica, dst_iteration, survivor);
            if (outcome == runtime::RepostOutcome::kDestinationTaken) {
              continue;
            }
            if (outcome == runtime::RepostOutcome::kMoved) {
              ++report_.replanned_iterations;
              static common::Counter& reposts =
                  common::MetricsRegistry::Instance().GetCounter(
                      "recovery_reposts_total");
              reposts.Add();
            }
            // kSourceGone: fetched in a race — the work already happened.
            // kUnsupported: this store cannot move plans; nothing to do.
            break;
          }
        }
      }
    }
    const double recovery_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    report_.recovery_ms += recovery_ms;
    lock.unlock();
    static common::LatencyHistogram& recovery_us =
        common::MetricsRegistry::Instance().GetHistogram("recovery_us");
    recovery_us.RecordMs(recovery_ms);
  }
  std::function<void(const ReplicaEvent&)> downstream;
  {
    std::lock_guard<std::mutex> lock(mu_);
    downstream = downstream_;
    if (downstream) {
      ++downstream_in_flight_;
    }
  }
  if (downstream) {
    downstream(event);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --downstream_in_flight_;
    }
    downstream_cv_.notify_all();
  }
}

}  // namespace dynapipe::service
