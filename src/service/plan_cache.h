// Cross-iteration plan cache.
//
// The planner is a deterministic function of the mini-batch's multiset of
// (input_len, target_len) sequence lengths plus the model/cluster/planner
// configuration — sample identities never influence a planning decision, only
// their lengths do. PlanCache exploits that: whole IterationPlans are memoized
// under a canonical *mini-batch signature* (the sorted, optionally quantized
// length multiset hashed together with a configuration hash), so epochs that
// revisit batch shapes — epoch-based training replaying the same shuffled
// batches, recurring task mixes — skip partitioning, scheduling, and
// communication planning entirely and pay only a lookup plus a sample rebind.
//
// A cache hit "rebinds" the cached plan to the new mini-batch: every cached
// sample slot is matched to a new sample with the same (quantized) length
// pair, which the signature guarantees exists. Padded shapes, predicted
// times, schedules, and execution plans depend only on lengths, so a rebound
// plan is bit-identical to replanning (quantization 1). With quantization q >
// 1, lengths are rounded up to multiples of q before keying *and* planning,
// trading a little extra padding for hits across nearly-identical batches —
// the padded-length quantization the ROADMAP earmarks for T5's diverse shape
// space.
//
// Thread-safe (one mutex around the LRU structures); concurrent plan-ahead
// workers share one cache. Racing misses on the same signature plan the same
// deterministic result, so whichever insert wins, lookups stay consistent.
#ifndef DYNAPIPE_SRC_SERVICE_PLAN_CACHE_H_
#define DYNAPIPE_SRC_SERVICE_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/data/dataset.h"
#include "src/runtime/planner.h"

namespace dynapipe::service {

// FNV-1a accumulate; seed with kHashBasis. Shared by the signature and the
// trainer's configuration hash.
inline constexpr uint64_t kHashBasis = 1469598103934665603ull;
inline uint64_t HashCombine(uint64_t h, uint64_t v) {
  h ^= v;
  return h * 1099511628211ull;
}

// Canonical identity of a mini-batch for planning purposes. `key` is the
// sorted multiset of packed (input_len << 32 | target_len) pairs after
// canonicalization/quantization; `hash` additionally folds in the
// configuration hash and quantization so distinct setups never alias.
struct PlanSignature {
  uint64_t hash = 0;
  std::vector<uint64_t> key;

  bool operator==(const PlanSignature&) const = default;
};

struct PlanCacheOptions {
  // Maximum cached plans; least-recently-used entries are evicted beyond it.
  // Whole plans are a few hundred KB at large batches, so the default keeps
  // the cache at tens of MB worst case.
  size_t capacity = 64;
  // Maximum estimated bytes across cached plans (0: unbounded). Plan size
  // scales with batch size × replica count, so a count cap alone can blow
  // past a memory budget at large batches; the byte cap evicts LRU entries
  // until under budget, always keeping the most recent entry even when it
  // alone exceeds the cap (an empty cache helps nobody).
  size_t max_bytes = 0;
};

struct PlanCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t insertions = 0;
  int64_t evictions = 0;
  // Estimated bytes currently held (sum of EstimatePlanBytes over entries).
  int64_t bytes = 0;
  // Near-miss seeding (see LookupNearMiss).
  int64_t near_miss_hits = 0;
  int64_t near_miss_misses = 0;

  double hit_rate() const {
    const int64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
};

class PlanCache {
 public:
  explicit PlanCache(PlanCacheOptions options = {});

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  // Rounds len up to a multiple of q (q <= 1: identity; 0 stays 0 — absent
  // decoder sides must not grow one).
  static int32_t Quantize(int32_t len, int32_t q);

  // Builds the signature of `minibatch`. `fold_target_lengths` mirrors the
  // planner's decoder-only canonicalization (GPT folds target into input);
  // `quantization` rounds lengths up; `config_hash` pins the model, cluster,
  // and planner configuration the plan depends on.
  static PlanSignature Signature(const std::vector<data::Sample>& minibatch,
                                 bool fold_target_lengths, int32_t quantization,
                                 uint64_t config_hash);

  // Returns a copy of the planned samples with lengths canonicalized the same
  // way the signature is (fold + quantize). Identity when quantization <= 1:
  // the planner folds on its own, so exact-mode planning sees raw samples.
  static std::vector<data::Sample> CanonicalizeForPlanning(
      const std::vector<data::Sample>& minibatch, bool fold_target_lengths,
      int32_t quantization);

  // Rebinds `plan` (computed for a batch with the same signature) to
  // `minibatch`: each cached sample slot is replaced by a new sample whose
  // canonicalized length pair matches; shapes, schedules, predictions, and
  // exec plans are untouched. Aborts if the multisets do not match — callers
  // must only rebind within one signature.
  static runtime::IterationPlan Rebind(runtime::IterationPlan plan,
                                       const std::vector<data::Sample>& minibatch,
                                       bool fold_target_lengths,
                                       int32_t quantization);

  // On hit, returns the cached plan rebound to `minibatch` and refreshes its
  // LRU position. The returned plan carries the cached planning stats; the
  // caller decides what to surface for a hit.
  std::optional<runtime::IterationPlan> Lookup(
      const PlanSignature& sig, const std::vector<data::Sample>& minibatch,
      bool fold_target_lengths, int32_t quantization);

  // Second-level lookup after an exact miss: the cached entry whose sorted
  // length-multiset key shares the longest common prefix with `sig.key`,
  // provided the overlap covers at least half of the shorter key and the
  // entry recorded partition widths. Returns those widths as a warm-start
  // seed for planning the new batch — the planner revalidates them, so a
  // stale or cross-configuration seed degrades to slower planning, never to
  // a different plan. Refreshes the donor's LRU position (an entry useful as
  // a seed is an entry worth keeping).
  std::optional<runtime::PlanSeed> LookupNearMiss(const PlanSignature& sig);

  // Inserts a copy of `plan` under `sig` (first insert wins; re-inserting an
  // existing signature refreshes LRU only). Evicts least-recently-used
  // entries beyond capacity or the byte cap. Infeasible plans are not cached.
  void Insert(const PlanSignature& sig, const runtime::IterationPlan& plan);

  // Deep size estimate of one plan (samples, schedules, timelines,
  // instructions) — what the byte cap and `plan_cache_bytes` account.
  static size_t EstimatePlanBytes(const runtime::IterationPlan& plan);

  size_t size() const;
  size_t bytes() const;
  PlanCacheStats stats() const;

 private:
  struct Entry {
    PlanSignature sig;
    // Immutable once inserted; shared so Lookup only bumps a refcount under
    // the mutex and the (large) plan copy for rebinding happens outside it.
    std::shared_ptr<const runtime::IterationPlan> plan;
    size_t bytes = 0;  // EstimatePlanBytes + key, fixed at insert
  };
  // LRU order, most recent first; the list owns the entries so iterators stay
  // valid across every operation but the owning splice/erase.
  using EntryList = std::list<Entry>;

  EntryList::iterator FindLocked(const PlanSignature& sig);

  PlanCacheOptions options_;
  mutable std::mutex mu_;
  EntryList entries_;
  // hash -> entries with that hash (collision chain holds full-key compare).
  std::unordered_map<uint64_t, std::vector<EntryList::iterator>> index_;
  PlanCacheStats stats_;
};

}  // namespace dynapipe::service

#endif  // DYNAPIPE_SRC_SERVICE_PLAN_CACHE_H_
